//! One generator per table/figure of the paper's evaluation (§4).
//!
//! Every generator takes a `fraction` scaling the paper's cardinalities
//! (1.0 = full paper scale; the `figures` binary defaults to 0.1 so a
//! laptop run finishes in minutes). Workloads are ANN/AkNN *self-joins*
//! with self-matches excluded — the natural reading of "run ANN on the TAC
//! dataset" (with self-matches allowed every answer is trivially the point
//! itself).

use crate::harness::{run, Method, Metric, RunConfig};
use crate::report::Figure;
use ann_core::mba::{Expansion, Traversal};
use ann_geom::Point;

fn scaled(paper_n: usize, fraction: f64) -> usize {
    ((paper_n as f64 * fraction) as usize).max(2_000)
}

/// The seeds used everywhere, so runs are reproducible.
const SEED: u64 = 20070415;

fn tac(fraction: f64) -> Vec<(u64, Point<2>)> {
    ann_datagen::tac_like(scaled(700_000, fraction), SEED)
}

fn fc(fraction: f64) -> Vec<(u64, Point<10>)> {
    ann_datagen::fc_like(scaled(580_000, fraction), SEED)
}

/// Figure 3(a): comparison of methods on the TAC data — BNN/RBA/MBA with
/// both pruning metrics, plus GORDER; CPU and I/O per bar.
pub fn fig3a(fraction: f64) -> Figure {
    let data = tac(fraction);
    let mut fig = Figure::new(
        "fig3a",
        &format!(
            "TAC-like 2D self-join ANN (k=1, |R|=|S|={}, 512KiB pool)",
            data.len()
        ),
    );
    let cells = [
        (Method::Bnn, Metric::MaxMax),
        (Method::Bnn, Metric::Nxn),
        (Method::Rba, Metric::MaxMax),
        (Method::Rba, Metric::Nxn),
        (Method::Mba, Metric::MaxMax),
        (Method::Mba, Metric::Nxn),
    ];
    for (method, metric) in cells {
        let cfg = RunConfig {
            method,
            metric,
            ..Default::default()
        };
        fig.push("TAC", run(&data, &data, &cfg));
    }
    let cfg = RunConfig {
        method: Method::Gorder,
        ..Default::default()
    };
    fig.push("TAC", run(&data, &data, &cfg));
    fig
}

/// The §4.3 remark: the same metric comparison on synthetic data
/// ("similar results are also observed with the synthetic datasets").
pub fn fig3a_synthetic(fraction: f64) -> Figure {
    let data = ann_datagen::synthetic_nd::<2>(scaled(500_000, fraction), SEED);
    let mut fig = Figure::new(
        "fig3a-synthetic",
        &format!(
            "synthetic 500K2D-style self-join ANN (k=1, n={})",
            data.len()
        ),
    );
    for (method, metric) in [
        (Method::Bnn, Metric::MaxMax),
        (Method::Bnn, Metric::Nxn),
        (Method::Mba, Metric::MaxMax),
        (Method::Mba, Metric::Nxn),
    ] {
        let cfg = RunConfig {
            method,
            metric,
            ..Default::default()
        };
        fig.push("500K2D", run(&data, &data, &cfg));
    }
    fig
}

/// Figure 3(b): MBA vs GORDER on the 10-D FC data across buffer pool
/// sizes 512 KiB, 1 MiB, 4 MiB, 8 MiB.
pub fn fig3b(fraction: f64) -> Figure {
    let data = fc(fraction);
    let mut fig = Figure::new(
        "fig3b",
        &format!(
            "FC-like 10D self-join ANN (k=1, n={}), buffer sweep",
            data.len()
        ),
    );
    for (label, frames) in [
        ("512KB", 64usize),
        ("1MB", 128),
        ("4MB", 512),
        ("8MB", 1024),
    ] {
        for method in [Method::Mba, Method::Gorder] {
            let cfg = RunConfig {
                method,
                pool_frames: frames,
                ..Default::default()
            };
            fig.push(label, run(&data, &data, &cfg));
        }
    }
    fig
}

/// Figure 4: effect of dimensionality — MBA vs GORDER on the synthetic
/// 500K 2D/4D/6D datasets.
pub fn fig4(fraction: f64) -> Figure {
    let n = scaled(500_000, fraction);
    let mut fig = Figure::new(
        "fig4",
        &format!("synthetic self-join ANN (k=1, n={n}) over dimensionality"),
    );
    macro_rules! sweep {
        ($dim:literal, $label:expr) => {{
            let data = ann_datagen::synthetic_nd::<$dim>(n, SEED);
            for method in [Method::Mba, Method::Gorder] {
                let cfg = RunConfig {
                    method,
                    ..Default::default()
                };
                fig.push($label, run(&data, &data, &cfg));
            }
        }};
    }
    sweep!(2, "2D");
    sweep!(4, "4D");
    sweep!(6, "6D");
    fig
}

/// Figure 5: AkNN on TAC, k = 10..50 — MBA vs GORDER.
pub fn fig5(fraction: f64) -> Figure {
    let data = tac(fraction);
    let mut fig = Figure::new(
        "fig5",
        &format!("TAC-like 2D self-join AkNN (n={})", data.len()),
    );
    for k in [10usize, 20, 30, 40, 50] {
        for method in [Method::Mba, Method::Gorder] {
            let cfg = RunConfig {
                method,
                k,
                ..Default::default()
            };
            fig.push(&format!("k={k}"), run(&data, &data, &cfg));
        }
    }
    fig
}

/// Figure 6: AkNN on FC, k = 10..50 — MBA vs GORDER.
pub fn fig6(fraction: f64) -> Figure {
    let data = fc(fraction);
    let mut fig = Figure::new(
        "fig6",
        &format!("FC-like 10D self-join AkNN (n={})", data.len()),
    );
    for k in [10usize, 20, 30, 40, 50] {
        for method in [Method::Mba, Method::Gorder] {
            let cfg = RunConfig {
                method,
                k,
                ..Default::default()
            };
            fig.push(&format!("k={k}"), run(&data, &data, &cfg));
        }
    }
    fig
}

/// §3.3.2 ablation: the four traversal × expansion combinations of the
/// design space (the paper reports DF+BI wins and omits the table).
pub fn ablation_traversal(fraction: f64) -> Figure {
    let data = tac(fraction * 0.5);
    let mut fig = Figure::new(
        "ablation-traversal",
        &format!(
            "traversal/expansion design space, TAC-like (n={})",
            data.len()
        ),
    );
    for (t, tname) in [
        (Traversal::DepthFirst, "DF"),
        (Traversal::BreadthFirst, "BF"),
    ] {
        for (e, ename) in [
            (Expansion::Bidirectional, "BI"),
            (Expansion::Unidirectional, "UNI"),
        ] {
            let cfg = RunConfig {
                traversal: t,
                expansion: e,
                ..Default::default()
            };
            let mut m = run(&data, &data, &cfg);
            m.label = format!("MBA {tname}+{ename}");
            fig.push(&format!("{tname}+{ename}"), m);
        }
    }
    fig
}

/// §3.2 ablation: the MBR enhancement of the quadtree. The plain-quadrant
/// variant is only sound with MAXMAXDIST (see `ann-mbrqt` docs), so the
/// comparison is MBRQT+NXN vs MBRQT+MAXMAX vs plain-quadrant+MAXMAX.
pub fn ablation_mbr(fraction: f64) -> Figure {
    let data = tac(fraction * 0.5);
    let mut fig = Figure::new(
        "ablation-mbr",
        &format!(
            "MBR enhancement of the quadtree, TAC-like (n={})",
            data.len()
        ),
    );
    let mut m = run(
        &data,
        &data,
        &RunConfig {
            metric: Metric::Nxn,
            ..Default::default()
        },
    );
    m.label = "MBRQT NXNDIST".into();
    fig.push("mbr", m);
    let mut m = run(
        &data,
        &data,
        &RunConfig {
            metric: Metric::MaxMax,
            ..Default::default()
        },
    );
    m.label = "MBRQT MAXMAXDIST".into();
    fig.push("mbr", m);
    let mut m = run(
        &data,
        &data,
        &RunConfig {
            metric: Metric::MaxMax,
            use_subtree_mbrs: false,
            ..Default::default()
        },
    );
    m.label = "plain-quadrant MAXMAXDIST".into();
    fig.push("quadrant", m);
    fig
}

/// Extra: MNN (index nested loops) next to MBA, quantifying the §2 claim
/// that per-point searches pay a high CPU price.
pub fn extra_mnn(fraction: f64) -> Figure {
    let data = tac(fraction * 0.25);
    let mut fig = Figure::new(
        "extra-mnn",
        &format!("MNN vs MBA, TAC-like (n={})", data.len()),
    );
    for method in [Method::Mnn, Method::Mba] {
        let cfg = RunConfig {
            method,
            ..Default::default()
        };
        fig.push("TAC", run(&data, &data, &cfg));
    }
    fig
}

/// Ablation of this implementation's own design decision: multi-level
/// node packing in the MBRQT (DESIGN.md §6). `levels=1` is the naive
/// one-decomposition-level-per-page layout; the adaptive default packs
/// several levels per node so internal fanout fills the page.
pub fn ablation_packing(fraction: f64) -> Figure {
    let data = tac(fraction * 0.5);
    let mut fig = Figure::new(
        "ablation-packing",
        &format!("MBRQT node packing, TAC-like (n={})", data.len()),
    );
    for (group, levels) in [("adaptive", 0usize), ("1-level", 1)] {
        let cfg = RunConfig {
            mbrqt_levels_per_node: levels,
            ..Default::default()
        };
        let mut m = run(&data, &data, &cfg);
        m.label = format!("MBA NXNDIST ({group} packing)");
        fig.push(group, m);
    }
    fig
}

/// Extra: the no-index HNN baseline (§2) next to BNN and MBA on 2-D
/// data — where a uniform grid is viable — and on skewed data, where the
/// paper notes HNN degrades.
pub fn extra_hnn(fraction: f64) -> Figure {
    let n = scaled(500_000, fraction / 2.0);
    let mut fig = Figure::new(
        "extra-hnn",
        &format!("HNN vs index methods, 2D (n={n}), uniform and skewed"),
    );
    let uniform = ann_datagen::uniform::<2>(n, SEED);
    let skewed = ann_datagen::skewed::<2>(n, 4.0, SEED);
    for (group, data) in [("uniform", &uniform), ("skewed", &skewed)] {
        for method in [Method::Hnn, Method::Bnn, Method::Mba] {
            let cfg = RunConfig {
                method,
                ..Default::default()
            };
            fig.push(group, run(data, data, &cfg));
        }
    }
    fig
}

/// Extra: scaling of the parallel MBA extension over worker threads.
/// Builds the indices once and measures the join at 1/2/4/8 threads plus
/// the serial implementation as the baseline.
// Drives the legacy per-algorithm entrypoints on purpose: the sweep
// compares them head-to-head, bypassing the unified dispatch layer.
#[allow(deprecated)]
pub fn extra_parallel(fraction: f64) -> Figure {
    use ann_core::mba::{mba, mba_parallel, MbaConfig};
    use ann_geom::NxnDist;
    use ann_mbrqt::{Mbrqt, MbrqtConfig};
    use ann_store::{BufferPool, MemDisk};
    use std::sync::Arc;
    use std::time::Instant;

    let data = tac(fraction);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut fig = Figure::new(
        "extra-parallel",
        &format!(
            "parallel MBA scaling, TAC-like (n={}), host has {cores} core(s) —              expect no speedup beyond that",
            data.len()
        ),
    );
    // A pool big enough to hold both trees: this experiment isolates CPU
    // scaling (with 512 KiB the threads would serialize on page faults).
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 1 << 16));
    let ir = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).expect("build");
    let is = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).expect("build");
    let cfg = MbaConfig {
        exclude_self: true,
        ..Default::default()
    };

    let mut push = |group: &str, label: String, out: ann_core::stats::AnnOutput, secs: f64| {
        let io = out.stats.io;
        fig.push(
            group,
            crate::harness::Measurement {
                label,
                cpu_seconds: secs,
                physical_pages: io.physical_total(),
                io_seconds: io.physical_total() as f64 * crate::harness::IO_SECONDS_PER_PAGE,
                logical_reads: io.logical_reads,
                result_pairs: out.results.len(),
                distance_computations: out.stats.distance_computations,
                enqueued: out.stats.enqueued,
                build_seconds: 0.0,
            },
        );
    };

    let t0 = Instant::now();
    let out = mba::<2, NxnDist, _, _>(&ir, &is, &cfg).expect("serial");
    push(
        "serial",
        "MBA serial".into(),
        out,
        t0.elapsed().as_secs_f64(),
    );
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let out = mba_parallel::<2, NxnDist, _, _>(&ir, &is, &cfg, threads).expect("parallel");
        push(
            &format!("{threads}T"),
            format!("MBA parallel x{threads}"),
            out,
            t0.elapsed().as_secs_f64(),
        );
    }
    fig
}

/// Thread-scaling figure for the concurrency work: the same AkNN
/// self-join at 1/2/4/8/… worker threads, against the default sharded
/// buffer pool and against a single-shard pool (the seed's one-big-mutex
/// design), with the pool hit/miss/contention and node-cache counters
/// that explain the curves. Emitted as `BENCH_parallel_scaling.json`.
// Same deliberate legacy-entrypoint use as `extra_parallel` above.
#[allow(deprecated)]
pub fn parallel_scaling(fraction: f64) -> crate::report::ScalingReport {
    use crate::report::{ScalingReport, ScalingRow};
    use ann_core::index::SpatialIndex;
    use ann_core::mba::{mba_parallel, MbaConfig};
    use ann_geom::NxnDist;
    use ann_mbrqt::{Mbrqt, MbrqtConfig};
    use ann_store::{BufferPool, MemDisk};
    use std::sync::Arc;
    use std::time::Instant;

    let data = tac(fraction);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, 4, 8];
    if cores > 1 && !thread_counts.contains(&cores) {
        thread_counts.push(cores);
        thread_counts.sort_unstable();
    }

    let mut report = ScalingReport {
        id: "BENCH_parallel_scaling".into(),
        workload: format!(
            "parallel MBA AkNN self-join, TAC-like (n={}), sharded vs single-mutex pool",
            data.len()
        ),
        host_cores: cores,
        rows: Vec::new(),
    };

    // Big enough to hold both trees: the study isolates lock/cache
    // behavior, not eviction policy.
    const FRAMES: usize = 1 << 16;
    let cfg = MbaConfig {
        exclude_self: true,
        ..Default::default()
    };

    for (kind, shards) in [("single-mutex", Some(1)), ("sharded", None)] {
        let pool = Arc::new(match shards {
            Some(n) => BufferPool::with_shards(MemDisk::new(), FRAMES, n),
            None => BufferPool::new(MemDisk::new(), FRAMES),
        });
        let ir = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).expect("build");
        let is = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).expect("build");

        let mut wall_1t = None;
        for &threads in &thread_counts {
            // Cold decoded-node caches each run so every row pays the
            // same first-visit decode cost and the counters compare.
            for tree in [&ir, &is] {
                if let Some(c) = tree.node_cache() {
                    c.clear();
                    c.reset_stats();
                }
            }
            let t0 = Instant::now();
            let out = mba_parallel::<2, NxnDist, _, _>(&ir, &is, &cfg, threads).expect("join");
            let wall = t0.elapsed().as_secs_f64();
            let wall_1t = *wall_1t.get_or_insert(wall);

            let io = out.stats.io;
            let (mut nc_hits, mut nc_misses) = (0u64, 0u64);
            for tree in [&ir, &is] {
                if let Some(c) = tree.node_cache() {
                    let s = c.stats();
                    nc_hits += s.hits;
                    nc_misses += s.misses;
                }
            }
            let vs_mutex = report
                .rows
                .iter()
                .find(|r| r.pool == "single-mutex" && r.threads == threads && kind == "sharded")
                .map(|r| r.wall_seconds / wall);
            report.rows.push(ScalingRow {
                pool: kind.into(),
                threads,
                wall_seconds: wall,
                speedup_vs_one_thread: wall_1t / wall,
                speedup_vs_single_mutex: vs_mutex,
                pool_hits: io.pool_hits,
                pool_misses: io.pool_misses,
                lock_contention: io.lock_contention,
                node_cache_hits: nc_hits,
                node_cache_misses: nc_misses,
                result_pairs: out.results.len(),
            });
        }
    }
    report
}

/// The morsel-engine scaling study (`BENCH_parallel_join.json`): every
/// algorithm variant through the unified [`AnnRequest`] entrypoint with
/// [`threads`](ann_core::query::AnnRequest::threads) at 1/2/4/8, on a
/// uniform and a clustered dataset, each row byte-diffed against its own
/// single-thread run. The identity bit is the load-bearing output: the
/// work-stealing engine must produce the exact serial pair set at every
/// thread count, on every workload shape. CI validates the schema and
/// the identity bits unconditionally, and the 4-thread speedup only when
/// `ANN_ASSERT_SPEEDUP=1` (wall clock is meaningless on 1-core hosts).
///
/// [`AnnRequest`]: ann_core::query::AnnRequest
pub fn parallel_join(fraction: f64) -> crate::report::ParallelJoinReport {
    use crate::report::{ParallelJoinReport, ParallelJoinRow};
    use ann_core::prelude::*;
    use ann_mbrqt::{Mbrqt, MbrqtConfig};
    use ann_rstar::{RStar, RStarConfig};
    use ann_store::{BufferPool, MemDisk};
    use std::sync::Arc;
    use std::time::Instant;

    let n = scaled(40_000, fraction);
    let k = 2;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut report = ParallelJoinReport {
        id: "BENCH_parallel_join".into(),
        workload: format!(
            "2D self-join AkNN (k={k}, |R|=|S|={n}, warm pool): every \
             algorithm at 1/2/4/8 request threads, byte-diffed vs serial"
        ),
        host_cores: cores,
        k,
        rows: Vec::new(),
    };

    // Canonical pair bytes: the engine's guarantee is about the result
    // set, not the timing-dependent I/O counters.
    let canon = |out: &AnnOutput| -> Vec<(u64, u64, u64)> {
        let mut o = out.clone();
        o.sort();
        o.results
            .iter()
            .map(|p| (p.r_oid, p.s_oid, p.dist.to_bits()))
            .collect()
    };

    let datasets: Vec<(&str, Vec<(u64, ann_geom::Point<2>)>)> = vec![
        ("uniform", ann_datagen::uniform::<2>(n, SEED)),
        ("clustered", ann_datagen::gaussian_clusters::<2>(n, 24, 0.02, SEED)),
    ];
    let variants: Vec<(&str, Algorithm)> = vec![
        ("mba", Algorithm::mba()),
        ("bnn", Algorithm::Bnn { group_size: 256 }),
        ("mnn", Algorithm::Mnn),
        ("hnn", Algorithm::hnn()),
    ];

    for (ds_name, data) in &datasets {
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 4_096));
        let ir = Mbrqt::bulk_build(pool.clone(), data, &MbrqtConfig::default()).expect("build R");
        let is = RStar::bulk_build(pool, data, &RStarConfig::default()).expect("build S");
        for (name, alg) in &variants {
            let run_one = |threads: usize| -> (AnnOutput, f64) {
                let t0 = Instant::now();
                let out = AnnRequest::new(*alg)
                    .k(k)
                    .exclude_self(true)
                    .threads(threads)
                    .run(Input::Index(&ir), Input::Index(&is))
                    .expect("fault-free run");
                (out, t0.elapsed().as_secs_f64())
            };
            // Warm every cache before anything is timed.
            let (warm, _) = run_one(1);
            let reference = canon(&warm);
            let mut wall_1t = None;
            for threads in [1usize, 2, 4, 8] {
                let (out, wall) = run_one(threads);
                let wall_1t = *wall_1t.get_or_insert(wall);
                report.rows.push(ParallelJoinRow {
                    algorithm: name.to_string(),
                    dataset: ds_name.to_string(),
                    n,
                    threads,
                    wall_seconds: wall,
                    speedup_vs_serial: wall_1t / wall,
                    result_pairs: out.results.len(),
                    byte_identical: canon(&out) == reference,
                });
            }
        }
    }
    report
}

/// SplitMix64 step — a tiny deterministic generator so the kernels study
/// (and its offline mirror under `target/devcheck`) needs no RNG crate.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix_next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Timings for one benchmark pipeline: cold and warm seconds for each
/// side, plus the bitwise comparison of their output buffers.
struct PipelineTimings {
    scalar_cold: f64,
    batched_cold: f64,
    scalar_warm: f64,
    batched_warm: f64,
    bit_identical: bool,
}

/// Times one scalar/batched pipeline pair. Both closures fill the same
/// output buffers and return the final value of their serial decision
/// replay (so neither side can be dead-code-eliminated and both make the
/// same pruning decisions). "Cold" passes run right after streaming the
/// evictor buffer (larger than any L3) to push the candidate columns out
/// of cache; "warm" is the mean of `warm_reps` back-to-back passes after
/// one untimed warm-up. The buffers are compared bit-for-bit at the end.
fn measure_pipeline(
    evictor: &mut [u8],
    sink: &mut u64,
    warm_reps: usize,
    scalar: &mut dyn FnMut(&mut Vec<f64>, &mut Vec<f64>) -> f64,
    batched: &mut dyn FnMut(&mut Vec<f64>, &mut Vec<f64>) -> f64,
    scalar_bufs: (&mut Vec<f64>, &mut Vec<f64>),
    batched_bufs: (&mut Vec<f64>, &mut Vec<f64>),
) -> PipelineTimings {
    use std::hint::black_box;
    use std::time::Instant;
    let (out_a, out_b) = scalar_bufs;
    let (bout_a, bout_b) = batched_bufs;

    let mut evict = |sink: &mut u64| {
        for b in evictor.iter_mut() {
            *b = b.wrapping_add(1);
        }
        *sink ^= evictor[*sink as usize % evictor.len()] as u64;
    };

    evict(sink);
    let t0 = Instant::now();
    let r = scalar(out_a, out_b);
    let scalar_cold = t0.elapsed().as_secs_f64();
    *sink ^= black_box(r).to_bits();

    evict(sink);
    let t0 = Instant::now();
    let r = batched(bout_a, bout_b);
    let batched_cold = t0.elapsed().as_secs_f64();
    *sink ^= black_box(r).to_bits();

    scalar(out_a, out_b);
    let t0 = Instant::now();
    for _ in 0..warm_reps {
        *sink ^= black_box(scalar(out_a, out_b)).to_bits();
    }
    let scalar_warm = t0.elapsed().as_secs_f64() / warm_reps as f64;

    batched(bout_a, bout_b);
    let t0 = Instant::now();
    for _ in 0..warm_reps {
        *sink ^= black_box(batched(bout_a, bout_b)).to_bits();
    }
    let batched_warm = t0.elapsed().as_secs_f64() / warm_reps as f64;

    let bit_identical = out_a
        .iter()
        .zip(bout_a.iter())
        .chain(out_b.iter().zip(bout_b.iter()))
        .all(|(x, y)| x.to_bits() == y.to_bits());
    PipelineTimings {
        scalar_cold,
        batched_cold,
        scalar_warm,
        batched_warm,
        bit_identical,
    }
}

/// Batched-kernel throughput study (DESIGN.md §11): the scalar AoS
/// per-entry loops the query algorithms used before the SoA kernels
/// landed, against [`ann_geom::kernels`] over the same candidates in
/// column-major layout. Three pipelines — the point scan of
/// HNN/BNN/brute force (`DIST²` per candidate point), the MBA/kNN leaf
/// scan (MINMINDIST + NXNDIST per leaf point as a degenerate MBR), and
/// the internal-node probe (the same metrics per candidate MBR) — measured
/// cold (candidate columns evicted from cache) and warm (averaged repeat
/// passes), at D ∈ {2, 8, 10}.
///
/// Every pipeline ends with the serial decision replay the algorithms
/// perform: an evolving pruning bound consumes each value in candidate
/// order. The scalar side interleaves it with the metric evaluation —
/// the exact shape of the pre-kernel per-entry loops, whose loop-carried
/// bound dependency is what kept them from vectorizing — while the
/// batched side runs the kernel first and replays the decisions over the
/// output buffers, the compute-full/decide-after structure the
/// algorithms use today. Both sides compute every metric, produce the
/// same buffers (re-checked bit-for-bit on every row's data), and reach
/// the same final bound. Emitted as `BENCH_kernels.json`; `fraction`
/// scales the candidate count (the 0.1 default → 100 000 candidates per
/// pass).
pub fn kernels_bench(fraction: f64) -> crate::report::KernelsReport {
    use crate::report::{KernelRow, KernelsReport};
    use ann_geom::{kernels, min_min_dist_sq, nxn_dist_sq, Mbr, SoaMbrs, SoaPoints};
    use std::hint::black_box;

    let n = scaled(1_000_000, fraction);
    const WARM_REPS: usize = 16;
    let mut report = KernelsReport {
        id: "BENCH_kernels".into(),
        workload: format!(
            "scalar AoS loops vs batched SoA kernels + decision replay, {n} uniform \
             candidates per pass, warm = mean of {WARM_REPS} passes"
        ),
        lanes: kernels::LANES,
        rows: Vec::new(),
    };

    fn mk_row(
        kernel: &str,
        dims: usize,
        cache: &str,
        n: usize,
        scalar_seconds: f64,
        batched_seconds: f64,
        bit_identical: bool,
    ) -> KernelRow {
        KernelRow {
            kernel: kernel.into(),
            dims,
            cache: cache.into(),
            candidates: n,
            scalar_seconds,
            batched_seconds,
            scalar_melems_per_sec: n as f64 / scalar_seconds / 1e6,
            batched_melems_per_sec: n as f64 / batched_seconds / 1e6,
            speedup: scalar_seconds / batched_seconds,
            bit_identical,
        }
    }

    // Streaming through a buffer larger than L3 evicts the candidate
    // columns, so "cold" rows pay the memory-bound cost the first probe
    // of a node pays after a buffer-pool miss.
    let mut evictor = vec![1u8; 64 << 20];
    let mut sink = 0u64;

    macro_rules! sweep {
        ($dim:literal) => {{
            let mut st: u64 = SEED ^ ($dim as u64);
            let pts: Vec<Point<$dim>> = (0..n)
                .map(|_| {
                    let mut c = [0.0; $dim];
                    for v in c.iter_mut() {
                        *v = unit_f64(&mut st) * 100.0;
                    }
                    Point::new(c)
                })
                .collect();
            let mut pt_cols = vec![0.0f64; $dim * n];
            for d in 0..$dim {
                for i in 0..n {
                    pt_cols[d * n + i] = pts[i].coords()[d];
                }
            }
            let mbrs: Vec<Mbr<$dim>> = (0..n)
                .map(|_| {
                    let mut lo = [0.0; $dim];
                    let mut hi = [0.0; $dim];
                    for d in 0..$dim {
                        lo[d] = unit_f64(&mut st) * 100.0;
                        hi[d] = lo[d] + unit_f64(&mut st) * 5.0;
                    }
                    Mbr::new(lo, hi)
                })
                .collect();
            let mut lo_cols = vec![0.0f64; $dim * n];
            let mut hi_cols = vec![0.0f64; $dim * n];
            for d in 0..$dim {
                for i in 0..n {
                    lo_cols[d * n + i] = mbrs[i].lo[d];
                    hi_cols[d * n + i] = mbrs[i].hi[d];
                }
            }
            let mut qc = [0.0; $dim];
            let mut qlo = [0.0; $dim];
            let mut qhi = [0.0; $dim];
            for d in 0..$dim {
                qc[d] = unit_f64(&mut st) * 100.0;
                qlo[d] = unit_f64(&mut st) * 100.0;
                qhi[d] = qlo[d] + unit_f64(&mut st) * 10.0;
            }
            let q = Point::new(qc);
            let qm = Mbr::new(qlo, qhi);

            let mut out_a = vec![0.0f64; n];
            let mut out_b = vec![0.0f64; n];
            let mut bout_a: Vec<f64> = Vec::with_capacity(n);
            let mut bout_b: Vec<f64> = Vec::with_capacity(n);

            // -- point-leaf-scan: DIST² of one query point against every
            //    candidate point, the HNN/BNN/brute inner loop. The
            //    replay is the running best the k-best heap maintains.
            {
                let mut scalar = |out: &mut Vec<f64>, _unused: &mut Vec<f64>| {
                    let mut best = f64::INFINITY;
                    let mut improved = 0u64;
                    for i in 0..n {
                        let d2 = q.dist_sq(&pts[i]);
                        out[i] = d2;
                        if d2 < best {
                            best = d2;
                            improved += 1;
                        }
                    }
                    best + improved as f64
                };
                let mut batched = |out: &mut Vec<f64>, _unused: &mut Vec<f64>| {
                    let sp = SoaPoints::new(n, &pt_cols);
                    kernels::dist_sq_batch(&q, &sp, out);
                    let mut best = f64::INFINITY;
                    let mut improved = 0u64;
                    for &d2 in out.iter() {
                        if d2 < best {
                            best = d2;
                            improved += 1;
                        }
                    }
                    best + improved as f64
                };
                let t = measure_pipeline(
                    &mut evictor,
                    &mut sink,
                    WARM_REPS,
                    &mut scalar,
                    &mut batched,
                    (&mut out_a, &mut out_b),
                    (&mut bout_a, &mut bout_b),
                );
                report.rows.push(mk_row(
                    "point-leaf-scan",
                    $dim,
                    "cold",
                    n,
                    t.scalar_cold,
                    t.batched_cold,
                    t.bit_identical,
                ));
                report.rows.push(mk_row(
                    "point-leaf-scan",
                    $dim,
                    "warm",
                    n,
                    t.scalar_warm,
                    t.batched_warm,
                    t.bit_identical,
                ));
            }

            // -- leaf-scan: MINMINDIST + NXNDIST of one LPQ-owner MBR
            //    against every leaf point viewed as a degenerate MBR —
            //    exactly the MBA/kNN leaf scan (`soa_mbrs()` on a leaf
            //    aliases lo = hi to the point columns; the scalar path
            //    gathered each entry through `Mbr::from_point`).
            {
                let mut scalar = |omin: &mut Vec<f64>, oup: &mut Vec<f64>| {
                    let mut bound = f64::INFINITY;
                    for i in 0..n {
                        let pm = Mbr::from_point(&pts[i]);
                        let mind = min_min_dist_sq(&qm, &pm);
                        let up = nxn_dist_sq(&qm, &pm);
                        omin[i] = mind;
                        oup[i] = up;
                        if mind <= bound {
                            bound = bound.min(up);
                        }
                    }
                    bound
                };
                let mut batched = |omin: &mut Vec<f64>, oup: &mut Vec<f64>| {
                    let sm = SoaPoints::new(n, &pt_cols).as_mbrs();
                    kernels::min_min_dist_sq_batch(&qm, &sm, omin);
                    kernels::nxn_dist_sq_batch(&qm, &sm, oup);
                    let mut bound = f64::INFINITY;
                    for i in 0..n {
                        if omin[i] <= bound {
                            bound = bound.min(oup[i]);
                        }
                    }
                    bound
                };
                let t = measure_pipeline(
                    &mut evictor,
                    &mut sink,
                    WARM_REPS,
                    &mut scalar,
                    &mut batched,
                    (&mut out_a, &mut out_b),
                    (&mut bout_a, &mut bout_b),
                );
                report.rows.push(mk_row(
                    "leaf-scan",
                    $dim,
                    "cold",
                    n,
                    t.scalar_cold,
                    t.batched_cold,
                    t.bit_identical,
                ));
                report.rows.push(mk_row(
                    "leaf-scan",
                    $dim,
                    "warm",
                    n,
                    t.scalar_warm,
                    t.batched_warm,
                    t.bit_identical,
                ));
            }

            // -- mbr-probe: MINMINDIST + NXNDIST of one query MBR against
            //    every candidate MBR, the MBA/MNN/kNN node-probe loop.
            {
                let mut scalar = |omin: &mut Vec<f64>, oup: &mut Vec<f64>| {
                    let mut bound = f64::INFINITY;
                    for i in 0..n {
                        let mind = min_min_dist_sq(&qm, &mbrs[i]);
                        let up = nxn_dist_sq(&qm, &mbrs[i]);
                        omin[i] = mind;
                        oup[i] = up;
                        if mind <= bound {
                            bound = bound.min(up);
                        }
                    }
                    bound
                };
                let mut batched = |omin: &mut Vec<f64>, oup: &mut Vec<f64>| {
                    let sm = SoaMbrs::new(n, &lo_cols, &hi_cols);
                    kernels::min_min_dist_sq_batch(&qm, &sm, omin);
                    kernels::nxn_dist_sq_batch(&qm, &sm, oup);
                    let mut bound = f64::INFINITY;
                    for i in 0..n {
                        if omin[i] <= bound {
                            bound = bound.min(oup[i]);
                        }
                    }
                    bound
                };
                let t = measure_pipeline(
                    &mut evictor,
                    &mut sink,
                    WARM_REPS,
                    &mut scalar,
                    &mut batched,
                    (&mut out_a, &mut out_b),
                    (&mut bout_a, &mut bout_b),
                );
                report.rows.push(mk_row(
                    "mbr-probe",
                    $dim,
                    "cold",
                    n,
                    t.scalar_cold,
                    t.batched_cold,
                    t.bit_identical,
                ));
                report.rows.push(mk_row(
                    "mbr-probe",
                    $dim,
                    "warm",
                    n,
                    t.scalar_warm,
                    t.batched_warm,
                    t.bit_identical,
                ));
            }
        }};
    }
    sweep!(2);
    sweep!(8);
    sweep!(10);
    black_box(sink);
    report
}

/// The resilience fault-free-overhead study: every pool-backed algorithm
/// variant (plus the poolless HNN) through the unified entrypoint, first
/// ungoverned (no limits — the guard is one branch per expansion), then
/// with every resilience feature armed but never firing: a live cancel
/// token, a one-hour deadline, effectively-unbounded visit and I/O
/// budgets, and a per-request retry override. The armed run must be
/// decision-identical — same pairs, same work counters — and its wall
/// time is the measured cost of resilience on the fault-free path.
/// Emitted as `BENCH_robustness.json`.
pub fn robustness_bench(fraction: f64) -> crate::report::RobustnessReport {
    use ann_core::prelude::*;
    use ann_mbrqt::{Mbrqt, MbrqtConfig};
    use ann_rstar::{RStar, RStarConfig};
    use ann_store::{BufferPool, MemDisk, RetryPolicy};
    use std::hint::black_box;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let n = scaled(60_000, fraction);
    let data = ann_datagen::tac_like(n, SEED);
    let k = 2;
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 2_048));
    let ir = Mbrqt::bulk_build(pool.clone(), &data, &MbrqtConfig::default()).expect("build R");
    let is = RStar::bulk_build(pool, &data, &RStarConfig::default()).expect("build S");

    let mut report = crate::report::RobustnessReport {
        id: "BENCH_robustness".into(),
        workload: format!(
            "TAC-like 2D self-join AkNN (k={k}, |R|=|S|={n}, warm 2048-frame \
             pool): ungoverned vs fully-armed resilience, per-run average"
        ),
        max_overhead_percent: 0.0,
        rows: Vec::new(),
    };

    // Canonical decision content: sorted pairs + counters with the I/O
    // block zeroed (cache state differs across repeats; decisions must
    // not).
    let canon = |out: &AnnOutput| {
        let mut o = out.clone();
        o.sort();
        let mut stats = o.stats;
        stats.io = Default::default();
        (o.results, stats)
    };

    let variants: Vec<(&str, Algorithm)> = vec![
        ("mba", Algorithm::mba()),
        (
            "mba-2t",
            Algorithm::Mba {
                traversal: Traversal::default(),
                expansion: Expansion::default(),
                threads: 2,
            },
        ),
        ("bnn", Algorithm::Bnn { group_size: 256 }),
        ("mnn", Algorithm::Mnn),
        ("hnn", Algorithm::hnn()),
    ];
    const RUNS: usize = 9;
    for (name, alg) in variants {
        let baseline_req = || AnnRequest::new(alg).k(k).exclude_self(true);
        let armed_req = || {
            baseline_req()
                .cancel_token(CancelToken::new())
                .deadline_in(Duration::from_secs(3_600))
                .visit_budget(u64::MAX / 2)
                .io_budget(u64::MAX / 2)
                .retry(RetryPolicy::default())
        };
        // The entrypoint is input-generic: point-based algorithms (BNN's
        // R side, HNN) extract objects from the index, identically on
        // both timed paths.
        let run_one = |req: AnnRequest<'static>| -> AnnOutput {
            req.run(Input::Index(&ir), Input::Index(&is))
                .expect("fault-free run")
        };

        // Warm every cache, and pin down the reference decisions.
        let reference = canon(&run_one(baseline_req()));
        let armed_out = canon(&run_one(armed_req()));
        let decision_identical = armed_out == reference;

        // Interleave the two timed paths so slow machine-load drift hits
        // both equally instead of biasing whichever ran second.
        let mut baseline_total = 0.0;
        let mut armed_total = 0.0;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            black_box(run_one(baseline_req()));
            baseline_total += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            black_box(run_one(armed_req()));
            armed_total += t0.elapsed().as_secs_f64();
        }
        let baseline_seconds = baseline_total / RUNS as f64;
        let armed_seconds = armed_total / RUNS as f64;

        let overhead_percent = (armed_seconds / baseline_seconds - 1.0) * 100.0;
        report.max_overhead_percent = report.max_overhead_percent.max(overhead_percent);
        report.rows.push(crate::report::RobustnessRow {
            algorithm: name.to_string(),
            n,
            runs: RUNS,
            baseline_seconds,
            armed_seconds,
            overhead_percent,
            decision_identical,
        });
    }
    report
}

/// A [`DiskBackend`] wrapper that charges rotating-disk latency on reads:
/// one seek per read operation plus one transfer per page, with
/// [`read_batch`](ann_store::DiskBackend::read_batch) paying a single
/// seek per *contiguous ascending run* — the cost model under which the
/// prefetcher's sequential coalescing shows up in wall clock the way it
/// would on the paper's 2007 testbed (where a random page cost ~10 ms,
/// see [`crate::harness::IO_SECONDS_PER_PAGE`]). Buffered file reads
/// alone are microseconds, which would reduce the sweep to CPU noise.
///
/// Charging is toggleable so builds and `open()` validation runs are not
/// billed; writes are never charged (the measured workloads are
/// read-only).
struct SeekDisk<D> {
    inner: D,
    seek: std::time::Duration,
    transfer: std::time::Duration,
    charging: std::sync::atomic::AtomicBool,
}

impl<D: ann_store::DiskBackend> SeekDisk<D> {
    fn new(inner: D, seek: std::time::Duration, transfer: std::time::Duration) -> Self {
        SeekDisk {
            inner,
            seek,
            transfer,
            charging: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn set_charging(&self, on: bool) {
        self.charging.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    fn charge(&self, seeks: u32, pages: u32) {
        if self.charging.load(std::sync::atomic::Ordering::Relaxed) {
            std::thread::sleep(self.seek * seeks + self.transfer * pages);
        }
    }
}

impl<D: ann_store::DiskBackend> ann_store::DiskBackend for SeekDisk<D> {
    fn read_page(&self, id: ann_store::PageId, buf: &mut [u8]) -> ann_store::Result<()> {
        self.charge(1, 1);
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: ann_store::PageId, buf: &[u8]) -> ann_store::Result<()> {
        self.inner.write_page(id, buf)
    }

    fn allocate(&self) -> ann_store::Result<ann_store::PageId> {
        self.inner.allocate()
    }

    fn num_pages(&self) -> ann_store::PageId {
        self.inner.num_pages()
    }

    fn read_batch(&self, ids: &[ann_store::PageId], out: &mut [u8]) -> ann_store::Result<()> {
        let runs = ids
            .windows(2)
            .filter(|w| w[1] != w[0] + 1)
            .count() as u32
            + u32::from(!ids.is_empty());
        self.charge(runs, ids.len() as u32);
        self.inner.read_batch(ids, out)
    }
}

/// Overrides for the out-of-core sweep (`figures outofcore --points N
/// --pool-pages P --seed S`); `None` keeps the fraction-scaled defaults.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutofcoreOpts {
    /// Points per side of the largest sweep cell.
    pub points: Option<usize>,
    /// Single query-phase pool size instead of the default sweep list.
    pub pool_pages: Option<usize>,
    /// Dataset seed.
    pub seed: Option<u64>,
}

/// The out-of-core study (`BENCH_outofcore.json`): streaming external
/// bulk builds onto a [`FileDisk`], then per (points, pool pages) cell a
/// cold BNN self-join against the Hilbert-packed tree — with the leaf
/// prefetcher off and on — under the [`SeekDisk`] rotating-disk cost
/// model.
///
/// Prefetching is gated on two invariants, recorded per row: identical
/// sorted results and an identical logical read count — the prefetcher
/// may change only *when* a physical read happens, never *whether* a
/// logical one does. The separate census row streams `scaled(10⁷)`
/// points through the external R*-tree build, validates every structural
/// invariant, and checks that each input oid comes back exactly once.
///
/// [`FileDisk`]: ann_store::FileDisk
pub fn outofcore(fraction: f64, opts: &OutofcoreOpts) -> crate::report::OutofcoreReport {
    use ann_core::index::{collect_objects, validate};
    use ann_core::query::{Algorithm, AnnRequest, Input, MetricChoice, NoIndex};
    use ann_rstar::{RStar, RStarConfig};
    use ann_store::{BufferPool, FileDisk, PrefetchConfig};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // The charged disk geometry: 2 ms per seek, 25 µs per page transfer
    // (a scaled-down version of the paper's 10 ms/page 2007 laptop disk,
    // keeping runs short while I/O still dominates a cold sweep).
    const SEEK: Duration = Duration::from_micros(2_000);
    const TRANSFER: Duration = Duration::from_micros(25);

    let seed = opts.seed.unwrap_or(SEED);
    let n_max = opts.points.unwrap_or_else(|| scaled(400_000, fraction));
    let mut sweep_points = vec![(n_max / 4).max(2_000), n_max];
    sweep_points.dedup();
    let pool_sizes = opts.pool_pages.map_or_else(|| vec![64usize, 256], |p| vec![p]);

    let tmp = std::env::temp_dir();
    let file = |tag: &str| tmp.join(format!("ann-outofcore-{}-{tag}.pages", std::process::id()));

    let mut report = crate::report::OutofcoreReport {
        id: "BENCH_outofcore".into(),
        workload: format!(
            "uniform 2D self-join BNN ANN (k=1) against a streamed-built \
             Hilbert-packed R*-tree on FileDisk (seek {} µs, transfer {} µs \
             per page), cold pool, prefetch off vs on (n up to {n_max})",
            SEEK.as_micros(),
            TRANSFER.as_micros()
        ),
        seed,
        rows: Vec::new(),
        census: crate::report::OutofcoreCensus {
            points: 0,
            run_budget: 0,
            build_seconds: 0.0,
            validate_seconds: 0.0,
            census_seconds: 0.0,
            objects: 0,
            census_complete: false,
        },
    };

    for &n in &sweep_points {
        // Build the S tree once per cardinality through the external
        // pipeline: the input is a lazy stream, spill traffic goes to its
        // own file-backed scratch pool, and the build runs uncharged on a
        // generous pool.
        let tree_path = file(&format!("tree-{n}"));
        let scratch_path = file(&format!("scratch-{n}"));
        let build_pool = Arc::new(BufferPool::new(
            FileDisk::create(&tree_path).expect("create tree file"),
            2_048,
        ));
        let scratch = Arc::new(BufferPool::new(
            FileDisk::create(&scratch_path).expect("create scratch file"),
            256,
        ));
        let budget = (n / 8).max(4_096);
        let t0 = Instant::now();
        let is = RStar::bulk_build_stream(
            build_pool.clone(),
            scratch,
            ann_datagen::uniform_stream::<2>(n, seed),
            budget,
            &RStarConfig::default(),
        )
        .expect("stream-build I_S");
        let build_seconds = t0.elapsed().as_secs_f64();
        let dataset_pages = build_pool.num_pages() as u64;
        let is_meta = is.meta_page();
        drop((is, build_pool));
        std::fs::remove_file(&scratch_path).ok();

        // Query phase: the same file reopened behind the charged disk.
        let r = ann_datagen::uniform::<2>(n, seed);
        let disk = Arc::new(SeekDisk::new(
            FileDisk::open(&tree_path).expect("reopen tree file"),
            SEEK,
            TRANSFER,
        ));
        let pool = Arc::new(BufferPool::new(disk.clone(), 2_048));

        for &pool_pages in &pool_sizes {
            eprintln!(
                "  [outofcore] n={n}, pool={pool_pages} frames, {dataset_pages} dataset pages"
            );
            let mut baseline: Option<(Vec<ann_core::stats::NeighborPair>, u64)> = None;
            for prefetch in [false, true] {
                // Fresh handle per variant: the decoded-node cache lives
                // on the tree handle, and a warm cache would let the
                // second run skip the pool entirely. `open` validates the
                // tree, which is why charging only starts afterwards.
                let is = RStar::<2>::open(pool.clone(), is_meta).expect("reopen I_S");
                pool.clear().expect("clear pool");
                pool.set_capacity(pool_pages.max(8)).expect("set capacity");
                pool.reset_stats();
                if prefetch {
                    // Pipelined: the pool's worker thread overlaps the
                    // speculative seeks with BNN compute; `disable_prefetch`
                    // below parks it before the counters are read.
                    pool.enable_prefetch_pipelined(PrefetchConfig {
                        max_inflight: (pool_pages / 8).clamp(4, 32),
                        batch: 8,
                    });
                } else {
                    pool.disable_prefetch();
                }
                disk.set_charging(true);
                let t0 = Instant::now();
                let mut out = AnnRequest::new(Algorithm::Bnn { group_size: 256 })
                    .k(1)
                    .exclude_self(true)
                    .metric(MetricChoice::Nxn)
                    .run(Input::<2, NoIndex>::Points(&r), Input::Index(&is))
                    .expect("BNN run");
                let wall_seconds = t0.elapsed().as_secs_f64();
                disk.set_charging(false);
                pool.disable_prefetch();
                let io = pool.stats();
                out.sort();
                let identical_to_baseline = match &baseline {
                    None => {
                        baseline = Some((out.results.clone(), io.logical_reads));
                        true
                    }
                    Some((pairs, logical)) => {
                        *pairs == out.results && *logical == io.logical_reads
                    }
                };
                report.rows.push(crate::report::OutofcoreRow {
                    points: n,
                    pool_pages,
                    dataset_pages,
                    prefetch,
                    build_seconds,
                    wall_seconds,
                    logical_reads: io.logical_reads,
                    physical_reads: io.physical_reads,
                    prefetch_issued: io.prefetch_issued,
                    prefetch_hits: io.prefetch_hits,
                    prefetch_wasted: io.prefetch_wasted,
                    prefetch_hit_rate: if io.prefetch_issued == 0 {
                        0.0
                    } else {
                        io.prefetch_hits as f64 / io.prefetch_issued as f64
                    },
                    result_pairs: out.results.len(),
                    identical_to_baseline,
                });
            }
        }
        drop(pool);
        std::fs::remove_file(&tree_path).ok();
    }

    // The ≥10⁷-point external build: stream, validate, census.
    let census_n = scaled(10_000_000, fraction);
    let run_budget = census_n.clamp(1, 1 << 20);
    eprintln!("  [outofcore] census: streaming {census_n} points (run budget {run_budget})");
    let tree_path = file("census-tree");
    let scratch_path = file("census-scratch");
    let pool = Arc::new(BufferPool::new(
        FileDisk::create(&tree_path).expect("create census tree file"),
        2_048,
    ));
    let scratch = Arc::new(BufferPool::new(
        FileDisk::create(&scratch_path).expect("create census scratch file"),
        512,
    ));
    let t0 = Instant::now();
    let tree = RStar::bulk_build_stream(
        pool,
        scratch,
        ann_datagen::uniform_stream::<2>(census_n, seed),
        run_budget,
        &RStarConfig::default(),
    )
    .expect("census stream build");
    let build_seconds = t0.elapsed().as_secs_f64();
    std::fs::remove_file(&scratch_path).ok();

    let t0 = Instant::now();
    let shape = validate(&tree).expect("census tree validates");
    let validate_seconds = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut oids: Vec<u64> = collect_objects(&tree)
        .expect("census collect")
        .into_iter()
        .map(|(oid, _)| oid)
        .collect();
    oids.sort_unstable();
    let census_complete = shape.objects == census_n as u64
        && oids.len() == census_n
        && oids.iter().enumerate().all(|(i, &oid)| oid == i as u64);
    let census_seconds = t0.elapsed().as_secs_f64();
    drop(tree);
    std::fs::remove_file(&tree_path).ok();

    report.census = crate::report::OutofcoreCensus {
        points: census_n,
        run_budget,
        build_seconds,
        validate_seconds,
        census_seconds,
        objects: shape.objects,
        census_complete,
    };
    report
}

/// All figures at the given fraction (the `figures all` command).
pub fn all(fraction: f64) -> Vec<Figure> {
    vec![
        fig3a(fraction),
        fig3a_synthetic(fraction),
        fig3b(fraction),
        fig4(fraction),
        fig5(fraction),
        fig6(fraction),
        ablation_traversal(fraction),
        ablation_mbr(fraction),
        extra_mnn(fraction),
        extra_hnn(fraction),
        extra_parallel(fraction),
        ablation_packing(fraction),
    ]
}

/// Returns a textual rendering of the paper's Table 2
/// (dataset inventory), including the scaled cardinalities in effect.
pub fn table2(fraction: f64) -> String {
    let mut out = String::from("== Table 2 — experimental datasets ==\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>6}  {}\n",
        "name", "paper-card.", "scaled-card.", "dims", "description"
    ));
    for spec in ann_datagen::TABLE2 {
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>6}  {}\n",
            spec.name,
            spec.cardinality,
            scaled(spec.cardinality, fraction),
            spec.dims,
            spec.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke test: every generator runs end-to-end at a tiny fraction.
    /// (Figure *values* are covered by the EXPERIMENTS.md runs; here we
    /// only assert structure.)
    #[test]
    fn generators_produce_expected_row_counts() {
        let f = 0.003; // floors to the 2000-point minimum everywhere
        assert_eq!(fig3a(f).rows.len(), 7);
        assert_eq!(fig3b(f).rows.len(), 8);
        assert_eq!(fig4(f).rows.len(), 6);
        assert_eq!(fig5(f).rows.len(), 10);
        assert_eq!(fig6(f).rows.len(), 10);
        assert_eq!(ablation_traversal(f).rows.len(), 4);
        assert_eq!(ablation_mbr(f).rows.len(), 3);
        assert_eq!(extra_mnn(f).rows.len(), 2);
    }

    #[test]
    fn every_method_produces_full_results() {
        let f = 0.003;
        for fig in [fig3a(f), fig4(f)] {
            let expected = fig.rows[0].measurement.result_pairs;
            assert!(expected > 0);
            for row in &fig.rows {
                assert_eq!(
                    row.measurement.result_pairs, expected,
                    "{} disagrees on result count",
                    row.measurement.label
                );
            }
        }
    }

    #[test]
    fn table2_lists_all_datasets() {
        let t = table2(0.1);
        for name in ["500K2D", "500K4D", "500K6D", "TAC", "FC"] {
            assert!(t.contains(name));
        }
    }
}

/// The serving load sweep (`BENCH_serving`): the zero-dep HTTP
/// front-end under closed-loop load.
///
/// One in-process [`ann_serve::server::Server`] hosts a TAC-like 2-D
/// collection; each level runs a fixed pool of concurrent keep-alive
/// clients, every client issuing full AkNN self-join queries
/// back-to-back over a real socket. Every response is checked
/// byte-for-byte against the in-process [`run`](ann_core::query::run)
/// reference (stats excluded — pool counters legitimately vary under
/// concurrency), so the sweep doubles as the serving-identity gate:
/// CI fails on any non-200 response or any result divergence.
pub fn serving(fraction: f64) -> crate::report::ServingReport {
    use ann_core::query::{run, Input};
    use ann_core::stats::AnnStats;
    use ann_core::wire::{QueryOutcome, QuerySpec};
    use ann_mbrqt::{Mbrqt, MbrqtConfig};
    use ann_serve::client::{Client, Conn};
    use ann_serve::server::{Server, ServerConfig};
    use ann_store::{BufferPool, MemDisk};
    use std::sync::Arc;
    use std::time::Instant;

    let n = scaled(20_000, fraction);
    let k = 2;
    let workers = 4;
    let queue_depth = 64;

    // The server assigns positional oids on create, so the library-side
    // reference must be built over the same positional keying.
    let data = ann_datagen::tac_like(n, SEED);
    let points: Vec<(u64, Point<2>)> = data
        .iter()
        .enumerate()
        .map(|(i, (_, p))| (i as u64, *p))
        .collect();
    let rows: Vec<[f64; 2]> = points.iter().map(|(_, p)| [p.0[0], p.0[1]]).collect();

    let mut spec = QuerySpec::default();
    spec.k = k;
    spec.exclude_self = true;

    // Library-side reference, canonicalized to "pairs only" in the
    // server's canonical `(r_oid, dist, s_oid)` wire order.
    let pairs_only = |mut results: Vec<ann_core::stats::NeighborPair>| {
        results.sort_by(|a, b| {
            (a.r_oid, a.dist, a.s_oid)
                .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
                .expect("distances are finite")
        });
        QueryOutcome {
            results,
            stats: AnnStats::default(),
            report: None,
            version: None,
        }
        .to_json()
    };
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 2_048));
    let ir = Mbrqt::bulk_build(pool, &points, &MbrqtConfig::default()).expect("build reference");
    let expected = Arc::new(pairs_only(
        run(&spec.to_request(), Input::Index(&ir), Input::Index(&ir))
            .expect("reference run")
            .results,
    ));

    let data_dir = std::env::temp_dir().join(format!("ann-serve-bench-{}", std::process::id()));
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        data_dir: data_dir.clone(),
        pool_frames: 2_048,
        compute_tokens: 0,
    })
    .expect("server starts");
    let client = Client::new(server.addr().to_string());
    let created = client
        .create_collection("bench", "mbrqt", &rows)
        .expect("create collection");
    assert_eq!(created.status, 201, "create failed: {}", created.body);

    let mut report = crate::report::ServingReport {
        id: "BENCH_serving".into(),
        workload: format!(
            "TAC-like 2D self-join AkNN (k={k}, |R|=|S|={n}) over the HTTP \
             front-end: closed-loop keep-alive clients, {workers} workers, \
             queue depth {queue_depth}, every response checked against \
             query::run"
        ),
        n,
        k,
        workers,
        queue_depth,
        rows: Vec::new(),
    };

    let spec_json = Arc::new(spec.to_json());
    let addr = server.addr().to_string();
    for clients in [1usize, 8, 32] {
        let requests_per_client = (256 / clients).max(4);
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let spec_json = Arc::clone(&spec_json);
                let expected = Arc::clone(&expected);
                std::thread::spawn(move || {
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    let mut failed = 0usize;
                    let mut identical = true;
                    let mut conn = Conn::connect(&addr).expect("connect");
                    for _ in 0..requests_per_client {
                        let r0 = Instant::now();
                        let resp = conn
                            .request("POST", "/collections/bench/query", &spec_json)
                            .expect("request");
                        latencies.push(r0.elapsed().as_micros() as u64);
                        if resp.status != 200 {
                            failed += 1;
                            continue;
                        }
                        let pairs = QueryOutcome::from_json(&resp.body)
                            .map(|o| {
                                QueryOutcome {
                                    results: o.results,
                                    stats: AnnStats::default(),
                                    report: None,
                                    version: None,
                                }
                                .to_json()
                            })
                            .unwrap_or_default();
                        identical &= pairs == *expected;
                    }
                    (latencies, failed, identical)
                })
            })
            .collect();

        let mut latencies = Vec::new();
        let mut failed = 0usize;
        let mut identical = true;
        for h in handles {
            let (l, f, i) = h.join().expect("client thread");
            latencies.extend(l);
            failed += f;
            identical &= i;
        }
        let wall_seconds = t0.elapsed().as_secs_f64();
        latencies.sort_unstable();
        let pct = |q: f64| -> f64 {
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx] as f64
        };
        let total = clients * requests_per_client;
        report.rows.push(crate::report::ServingRow {
            clients,
            requests_per_client,
            total_requests: total,
            failed_requests: failed,
            results_identical: identical,
            wall_seconds,
            throughput_qps: total as f64 / wall_seconds,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
        });
    }

    server.shutdown();
    std::fs::remove_dir_all(&data_dir).ok();
    report
}

/// The MVCC snapshot-isolation benchmark (`BENCH_mvcc`): reader latency
/// over a versioned MBRQT with and without an active writer.
///
/// A pool of reader threads each pins a fresh snapshot per query
/// ([`VersionedHandle::pin`](ann_core::snapshot::VersionedHandle::pin))
/// and runs a full AkNN self-join against it — once on a quiescent
/// store (`read_only`) and once while a writer thread commits versioned
/// insert/delete transactions at a steady cadence (`with_writer`).
/// The two modes alternate in short rounds rather than running as two
/// monolithic blocks, so transient machine noise (CI runners are shared
/// and small) lands on both modes evenly instead of skewing whichever
/// block it happened to hit. Readers never take the writer's lock, so
/// the two modes' p95 latencies should sit close together — CI gates
/// `reader_p95_ratio` (with-writer p95 / read-only p95) at 1.25, the
/// "readers are not blocked by writers" headline.
pub fn mvcc(fraction: f64) -> crate::report::MvccReport {
    use ann_core::query::{run as run_query, Input};
    use ann_core::snapshot::VersionedHandle;
    use ann_core::wire::QuerySpec;
    use ann_mbrqt::{Mbrqt, MbrqtConfig};
    use ann_store::{BufferPool, MemDisk, DEFAULT_KEEP};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let n = scaled(20_000, fraction);
    let k = 2;
    let readers = 2;
    let rounds = 6;
    let queries_per_reader = 8; // per reader per round; 96 total per mode

    let data = ann_datagen::tac_like(n, SEED);
    let points: Vec<(u64, Point<2>)> = data
        .iter()
        .enumerate()
        .map(|(i, (_, p))| (i as u64, *p))
        .collect();

    let pool = Arc::new(BufferPool::new(MemDisk::new(), 4_096));
    let mut tree =
        Mbrqt::bulk_build(Arc::clone(&pool), &points, &MbrqtConfig::default()).expect("build");
    tree.enable_versioning(DEFAULT_KEEP).expect("versioning");
    let handle = tree.versioned_handle().expect("versioned handle");

    let mut spec = QuerySpec::default();
    spec.k = k;
    spec.exclude_self = true;
    let req = spec.to_request();

    // Warm the buffer pool and the node cache for the current version.
    {
        let ctx = handle.pin(None).expect("warmup pin");
        run_query(&req, Input::Index(&ctx), Input::Index(&ctx)).expect("warmup query");
    }

    // One reader phase: every query pins its own snapshot, runs the full
    // self-join against it, and releases the pin. Returns the merged
    // per-query latencies (µs) plus the failure count and wall time.
    let reader_phase = |handle: &VersionedHandle<2>| -> (Vec<u64>, usize, f64) {
        let t0 = Instant::now();
        let mut latencies = Vec::new();
        let mut failed = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let handle = handle.clone();
                    let req = &req;
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(queries_per_reader);
                        let mut fail = 0usize;
                        for _ in 0..queries_per_reader {
                            let q0 = Instant::now();
                            let ok = handle.pin(None).ok().and_then(|ctx| {
                                run_query(req, Input::Index(&ctx), Input::Index(&ctx)).ok()
                            });
                            lat.push(q0.elapsed().as_micros() as u64);
                            if ok.is_none() {
                                fail += 1;
                            }
                        }
                        (lat, fail)
                    })
                })
                .collect();
            for h in handles {
                let (lat, fail) = h.join().expect("reader thread");
                latencies.extend(lat);
                failed += fail;
            }
        });
        (latencies, failed, t0.elapsed().as_secs_f64())
    };

    let pct = |latencies: &[u64], q: f64| -> f64 {
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx] as f64
    };
    let row = |mode: &str,
               latencies: &mut Vec<u64>,
               failed: usize,
               commits: usize,
               wall: f64|
     -> crate::report::MvccRow {
        latencies.sort_unstable();
        crate::report::MvccRow {
            mode: mode.into(),
            readers,
            queries: latencies.len(),
            failed,
            writer_commits: commits,
            wall_seconds: wall,
            throughput_qps: latencies.len() as f64 / wall,
            p50_us: pct(latencies, 0.50),
            p95_us: pct(latencies, 0.95),
            p99_us: pct(latencies, 0.99),
        }
    };

    // Alternate read-only and with-writer rounds. During a with-writer
    // round the writer commits versioned insert+delete transactions at a
    // steady ~50 Hz cadence. The pacing matters: the gate is about
    // snapshot *blocking*, and a spinning writer on a small machine
    // would instead measure raw CPU contention (CI runners can have a
    // single core).
    let (mut lat_ro, mut lat_w) = (Vec::new(), Vec::new());
    let (mut failed_ro, mut failed_w) = (0usize, 0usize);
    let (mut wall_ro, mut wall_w) = (0.0f64, 0.0f64);
    let mut commits = 0usize;
    let mut next_oid = n as u64;
    for _ in 0..rounds {
        let (lat, fail, wall) = reader_phase(&handle);
        lat_ro.extend(lat);
        failed_ro += fail;
        wall_ro += wall;

        let stop = AtomicBool::new(false);
        let (lat, fail, wall) = std::thread::scope(|scope| {
            let tree = &mut tree;
            let points = &points;
            let next_oid = &mut next_oid;
            let stop = &stop;
            let writer = scope.spawn(move || {
                let mut done = 0usize;
                while !stop.load(Ordering::Acquire) {
                    // Reuse an existing coordinate so the insert always
                    // lands inside the MBRQT's bulk-build universe.
                    let p = points[*next_oid as usize % n].1;
                    tree.insert(*next_oid, p).expect("writer insert");
                    tree.delete(*next_oid, &p).expect("writer delete");
                    *next_oid += 1;
                    done += 2;
                    std::thread::sleep(Duration::from_millis(20));
                }
                done
            });
            let out = reader_phase(&handle);
            stop.store(true, Ordering::Release);
            commits += writer.join().expect("writer thread");
            out
        });
        lat_w.extend(lat);
        failed_w += fail;
        wall_w += wall;
    }
    let row_ro = row("read_only", &mut lat_ro, failed_ro, 0, wall_ro);
    let row_w = row("with_writer", &mut lat_w, failed_w, commits, wall_w);

    let ratio = row_w.p95_us / row_ro.p95_us;
    crate::report::MvccReport {
        id: "BENCH_mvcc".into(),
        workload: format!(
            "TAC-like 2D self-join AkNN (k={k}, |R|=|S|={n}) over a \
             versioned MBRQT: {readers} readers pinning a snapshot per \
             query, read-only vs. concurrent writer committing versioned \
             insert/delete transactions (history window {DEFAULT_KEEP})"
        ),
        n,
        k,
        keep: DEFAULT_KEEP,
        rows: vec![row_ro, row_w],
        reader_p95_ratio: ratio,
    }
}
