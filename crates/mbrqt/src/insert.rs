//! Incremental point insertion.

use crate::{build::Builder, cell_of_mbr, cell_of_point, cell_quadrant, Mbrqt};
use ann_core::node::{read_node, write_node, Entry, Node, NodeEntry, ObjectEntry};
use ann_geom::{Mbr, Point};
use ann_store::{PageStore, Result, StoreError, Txn};
use std::sync::Arc;

/// Inserts one point; see [`Mbrqt::insert`].
///
/// The whole update — every rewritten node page plus the meta page — runs
/// inside one [`Txn`], so it reaches disk atomically: a crash (or an
/// injected fault) anywhere before the commit point leaves the on-disk
/// tree exactly as it was.
pub(crate) fn insert<const D: usize>(tree: &mut Mbrqt<D>, oid: u64, point: Point<D>) -> Result<()> {
    if !point.is_finite() {
        return Err(StoreError::corrupt("points must have finite coordinates"));
    }
    if !tree.universe.contains_point(&point) {
        return Err(StoreError::corrupt("point lies outside the universe"));
    }
    let pool = Arc::clone(&tree.pool);
    let vstore = tree.versions.clone();
    let txn = match vstore.as_ref() {
        // Versioned mode: reads translate through the latest snapshot and
        // the commit produces a new immutable version (copy-on-write).
        Some(store) => Txn::begin_versioned(store)?,
        None => Txn::begin(&pool, tree.journal),
    };
    let root = tree.root;
    let universe = tree.universe;
    let (saved_points, saved_bounds) = (tree.num_points, tree.bounds);
    let result = descend(tree, &txn, root, universe, 0, oid, point).and_then(|_| {
        tree.num_points += 1;
        tree.bounds.expand_point(&point);
        tree.save_meta_to(&txn)
    });
    match result.and_then(|()| txn.commit()) {
        Ok(()) => Ok(()),
        Err(e) => {
            // The on-disk tree is untouched (the txn never committed);
            // roll the in-memory mirrors back to match it.
            tree.num_points = saved_points;
            tree.bounds = saved_bounds;
            Err(e)
        }
    }
}

/// Recursively routes the point down to its bucket, splitting overflowing
/// buckets, and rewrites every node on the path (counts and MBRs change).
/// Returns the subtree's new `(count, tight_mbr)`.
fn descend<const D: usize>(
    tree: &Mbrqt<D>,
    txn: &Txn<'_>,
    page: ann_store::PageId,
    quadrant: Mbr<D>,
    depth: usize,
    oid: u64,
    point: Point<D>,
) -> Result<(u64, Mbr<D>)> {
    let mut node = read_node::<D>(txn, page)?;

    if node.is_leaf {
        node.entries.push(Entry::Object(ObjectEntry { oid, point }));
        if node.entries.len() > tree.bucket_capacity && depth < tree.max_depth {
            // Split: rebuild this bucket as an internal node whose children
            // come from the same top-down builder the bulk path uses.
            let mut points: Vec<(u64, Point<D>)> = node
                .entries
                .iter()
                .map(|e| match e {
                    Entry::Object(o) => (o.oid, o.point),
                    Entry::Node(_) => unreachable!("leaf holds objects only"),
                })
                .collect();
            let mut builder = Builder {
                store: txn,
                bucket_capacity: tree.bucket_capacity,
                levels_per_node: tree.levels_per_node,
                max_depth: tree.max_depth,
                use_subtree_mbrs: tree.use_subtree_mbrs,
                level_tally: None,
            };
            let levels = builder.pick_levels::<D>(points.len(), depth);
            let mut parts: Vec<(usize, Vec<(u64, Point<D>)>)> = Vec::new();
            for (o, p) in points.drain(..) {
                let idx = cell_of_point(&quadrant, &p, levels);
                match parts.binary_search_by_key(&idx, |(i, _)| *i) {
                    Ok(at) => parts[at].1.push((o, p)),
                    Err(at) => parts.insert(at, (idx, vec![(o, p)])),
                }
            }
            let mut internal = Node {
                is_leaf: false,
                aux: 0,
                mbr: Mbr::empty(),
                entries: Vec::with_capacity(parts.len()),
            };
            for (idx, mut part) in parts {
                let child_q = cell_quadrant(&quadrant, idx, levels);
                let entry = builder.build(&mut part, child_q, depth + levels, 0)?;
                internal.entries.push(Entry::Node(entry));
            }
            internal.recompute_mbr();
            internal.aux = levels as u8;
            let count = internal.count();
            let tight = tight_mbr_of(&internal);
            write_node(txn, page, &internal)?;
            return Ok((count, tight));
        }
        node.recompute_mbr();
        let count = node.entries.len() as u64;
        let tight = node.mbr;
        write_node(txn, page, &node)?;
        return Ok((count, tight));
    }

    // Internal node: route to (or create) the child cell, at the packing
    // granularity this node was built with (persisted in the aux byte).
    let levels = (node.aux as usize).max(1);
    let idx = cell_of_point(&quadrant, &point, levels);
    let mut target: Option<usize> = None;
    for (at, e) in node.entries.iter().enumerate() {
        let Entry::Node(n) = e else {
            return Err(StoreError::corrupt("internal node holds an object"));
        };
        if cell_of_mbr(&quadrant, &n.mbr, levels) == idx {
            target = Some(at);
            break;
        }
    }

    match target {
        Some(at) => {
            let Entry::Node(child) = node.entries[at] else {
                unreachable!()
            };
            let child_q = cell_quadrant(&quadrant, idx, levels);
            let (count, tight) =
                descend(tree, txn, child.page, child_q, depth + levels, oid, point)?;
            node.entries[at] = Entry::Node(NodeEntry {
                page: child.page,
                count,
                mbr: if tree.use_subtree_mbrs {
                    tight
                } else {
                    child_q
                },
            });
        }
        None => {
            // Fresh cell: a one-point leaf.
            let child_q = cell_quadrant(&quadrant, idx, levels);
            let leaf_page = txn.allocate()?;
            let mut leaf = Node::empty_leaf();
            leaf.entries.push(Entry::Object(ObjectEntry { oid, point }));
            leaf.recompute_mbr();
            let tight = leaf.mbr;
            write_node(txn, leaf_page, &leaf)?;
            node.entries.push(Entry::Node(NodeEntry {
                page: leaf_page,
                count: 1,
                mbr: if tree.use_subtree_mbrs {
                    tight
                } else {
                    child_q
                },
            }));
        }
    }

    node.recompute_mbr();
    let count = node.count();
    let tight = tight_mbr_of(&node);
    write_node(txn, page, &node)?;
    Ok((count, tight))
}

/// The tight MBR of a node: equals `node.mbr` when entries carry tight
/// MBRs; in the plain-quadrant ablation the caller never uses tight MBRs,
/// so the loose union is acceptable there.
fn tight_mbr_of<const D: usize>(node: &Node<D>) -> Mbr<D> {
    node.mbr
}
