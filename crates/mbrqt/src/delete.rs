//! Point deletion with subtree collapse.
//!
//! Deletion routes to the bucket exactly like insertion, removes the
//! object, and updates counts and MBRs on the unwind. A quadtree has no
//! rotation/rebalance machinery; instead, an internal node whose subtree
//! has shrunk to bucket size is *collapsed* back into a single leaf
//! bucket (its descendant pages become garbage, matching the
//! write-once-page economy of the rest of the crate). Empty child
//! entries are dropped from their parents.

use crate::{cell_of_mbr, cell_of_point, Mbrqt};
use ann_core::node::{read_node, write_node, Entry, Node, NodeEntry, ObjectEntry};
use ann_geom::{Mbr, Point};
use ann_store::{PageId, Result, StoreError, Txn};
use std::sync::Arc;

/// Removes the object `(oid, point)`; see [`Mbrqt::delete`].
pub(crate) fn delete<const D: usize>(
    tree: &mut Mbrqt<D>,
    oid: u64,
    point: &Point<D>,
) -> Result<bool> {
    if tree.num_points == 0 || !tree.universe.contains_point(point) {
        return Ok(false);
    }
    // Like insertion, the whole removal runs inside one [`Txn`] so node
    // rewrites, collapses and the meta update land atomically or not at
    // all.
    let pool = Arc::clone(&tree.pool);
    let vstore = tree.versions.clone();
    let txn = match vstore.as_ref() {
        // Versioned mode: see `insert` — reads translate through the
        // latest snapshot, the commit publishes a new version.
        Some(store) => Txn::begin_versioned(store)?,
        None => Txn::begin(&pool, tree.journal),
    };
    let root = tree.root;
    let universe = tree.universe;
    let (saved_points, saved_bounds) = (tree.num_points, tree.bounds);
    let result = (|| -> Result<bool> {
        let Some((_, _)) = remove_rec(tree, &txn, root, universe, oid, point)? else {
            return Ok(false);
        };
        tree.num_points -= 1;
        // Rebuild cached dataset bounds from the root node (deletion can
        // shrink them).
        let root_node = read_node::<D>(&txn, tree.root)?;
        tree.bounds = root_node.mbr;
        tree.save_meta_to(&txn)?;
        Ok(true)
    })();
    match result.and_then(|removed| txn.commit().map(|()| removed)) {
        Ok(removed) => Ok(removed),
        Err(e) => {
            tree.num_points = saved_points;
            tree.bounds = saved_bounds;
            Err(e)
        }
    }
}

/// Recursive removal below `page` (whose region is `quadrant`).
/// Returns `None` when the object was not found, otherwise the subtree's
/// new `(count, tight_mbr)`.
fn remove_rec<const D: usize>(
    tree: &Mbrqt<D>,
    txn: &Txn<'_>,
    page: PageId,
    quadrant: Mbr<D>,
    oid: u64,
    point: &Point<D>,
) -> Result<Option<(u64, Mbr<D>)>> {
    let mut node = read_node::<D>(txn, page)?;

    if node.is_leaf {
        let before = node.entries.len();
        node.entries.retain(|e| match e {
            Entry::Object(o) => !(o.oid == oid && o.point == *point),
            Entry::Node(_) => true,
        });
        if node.entries.len() == before {
            return Ok(None);
        }
        node.recompute_mbr();
        let count = node.entries.len() as u64;
        let mbr = node.mbr;
        write_node(txn, page, &node)?;
        return Ok(Some((count, mbr)));
    }

    // Route to the child cell containing the point.
    let levels = (node.aux as usize).max(1);
    let idx = cell_of_point(&quadrant, point, levels);
    let Some(at) = node
        .entries
        .iter()
        .position(|e| matches!(e, Entry::Node(n) if cell_of_mbr(&quadrant, &n.mbr, levels) == idx))
    else {
        return Ok(None);
    };
    let Entry::Node(child) = node.entries[at] else {
        return Err(StoreError::corrupt("internal node holds an object"));
    };
    let child_q = crate::cell_quadrant(&quadrant, idx, levels);
    let Some((count, mbr)) = remove_rec(tree, txn, child.page, child_q, oid, point)? else {
        return Ok(None);
    };

    if count == 0 {
        node.entries.remove(at);
    } else {
        node.entries[at] = Entry::Node(NodeEntry {
            page: child.page,
            count,
            mbr: if tree.use_subtree_mbrs { mbr } else { child_q },
        });
    }

    let total = node.count();
    if total <= tree.bucket_capacity as u64 {
        // Collapse the whole subtree back into one leaf bucket.
        let mut objects: Vec<ObjectEntry<D>> = Vec::with_capacity(total as usize);
        collect_objects(txn, &node, &mut objects)?;
        let mut leaf = Node::empty_leaf();
        leaf.entries = objects.into_iter().map(Entry::Object).collect();
        leaf.recompute_mbr();
        let count = leaf.entries.len() as u64;
        let mbr = leaf.mbr;
        write_node(txn, page, &leaf)?;
        return Ok(Some((count, mbr)));
    }

    node.recompute_mbr();
    let mbr = node.mbr;
    write_node(txn, page, &node)?;
    Ok(Some((total, mbr)))
}

/// Gathers every object below `node`'s child entries.
fn collect_objects<const D: usize>(
    txn: &Txn<'_>,
    node: &Node<D>,
    out: &mut Vec<ObjectEntry<D>>,
) -> Result<()> {
    let mut stack: Vec<PageId> = node
        .entries
        .iter()
        .filter_map(|e| match e {
            Entry::Node(n) => Some(n.page),
            Entry::Object(_) => None,
        })
        .collect();
    while let Some(page) = stack.pop() {
        let n = read_node::<D>(txn, page)?;
        for e in &n.entries {
            match e {
                Entry::Object(o) => out.push(*o),
                Entry::Node(c) => stack.push(c.page),
            }
        }
    }
    Ok(())
}
