//! Metadata-page persistence for [`Mbrqt`].

use crate::Mbrqt;
use ann_core::snapshot::MetaFields;
use ann_geom::Mbr;
use ann_store::{BufferPool, Journal, PageId, PageStore, Result, Snapshot, StoreError};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"MBRQTv1\0";

/// Serializes the tree's metadata into its meta page through `store` —
/// normally a [`ann_store::Txn`], so the meta update commits atomically
/// with the structural changes it describes.
pub(crate) fn save_to<const D: usize>(tree: &Mbrqt<D>, store: &impl PageStore) -> Result<()> {
    store.with_page_mut(tree.meta_page, |bytes| {
        let mut at = 0usize;
        let mut put = |src: &[u8]| {
            bytes[at..at + src.len()].copy_from_slice(src);
            at += src.len();
        };
        put(MAGIC);
        put(&(D as u32).to_le_bytes());
        put(&tree.root.to_le_bytes());
        put(&tree.num_points.to_le_bytes());
        put(&(tree.bucket_capacity as u32).to_le_bytes());
        put(&(tree.levels_per_node as u32).to_le_bytes());
        put(&(tree.max_depth as u32).to_le_bytes());
        put(&[u8::from(tree.use_subtree_mbrs), 0, 0, 0]);
        for d in 0..D {
            put(&tree.universe.lo[d].to_le_bytes());
        }
        for d in 0..D {
            put(&tree.universe.hi[d].to_le_bytes());
        }
        for d in 0..D {
            put(&tree.bounds.lo[d].to_le_bytes());
        }
        for d in 0..D {
            put(&tree.bounds.hi[d].to_le_bytes());
        }
    })
}

/// Everything the meta page records, decoded.
pub(crate) struct ParsedMeta<const D: usize> {
    pub root: PageId,
    pub num_points: u64,
    pub bucket_capacity: usize,
    pub levels_per_node: usize,
    pub max_depth: usize,
    pub use_subtree_mbrs: bool,
    pub universe: Mbr<D>,
    pub bounds: Mbr<D>,
}

/// Decodes the meta page bytes (the inverse of [`save_to`]).
fn parse<const D: usize>(bytes: &[u8]) -> Result<ParsedMeta<D>> {
    if &bytes[0..8] != MAGIC {
        return Err(StoreError::corrupt("not an MBRQT meta page"));
    }
    let mut at = 8usize;
    let mut take = |n: usize| {
        let s = &bytes[at..at + n];
        at += n;
        s
    };
    let dim = u32::from_le_bytes(take(4).try_into().unwrap());
    if dim as usize != D {
        return Err(StoreError::corrupt("dimensionality mismatch"));
    }
    let root = u32::from_le_bytes(take(4).try_into().unwrap());
    let num_points = u64::from_le_bytes(take(8).try_into().unwrap());
    let bucket_capacity = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
    let levels_per_node = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
    let max_depth = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
    let use_subtree_mbrs = take(4)[0] != 0;
    let mut mbrs = [Mbr::<D>::empty(), Mbr::<D>::empty()];
    for m in mbrs.iter_mut() {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for v in lo.iter_mut() {
            *v = f64::from_le_bytes(take(8).try_into().unwrap());
        }
        for v in hi.iter_mut() {
            *v = f64::from_le_bytes(take(8).try_into().unwrap());
        }
        *m = Mbr { lo, hi };
    }
    Ok(ParsedMeta {
        root,
        num_points,
        bucket_capacity,
        levels_per_node,
        max_depth,
        use_subtree_mbrs,
        universe: mbrs[0],
        bounds: mbrs[1],
    })
}

/// Loads a tree, reading the meta page through `store` — the raw pool for
/// plain trees, a pinned [`Snapshot`] for versioned ones (where the
/// on-disk copy at `meta_page` itself is stale after COW commits).
pub(crate) fn load_via<const D: usize>(
    store: &impl PageStore,
    pool: Arc<BufferPool>,
    meta_page: PageId,
    journal: Journal,
) -> Result<Mbrqt<D>> {
    let meta = store.with_page(meta_page, |bytes| parse::<D>(bytes))??;
    Ok(Mbrqt {
        pool,
        meta_page,
        journal,
        root: meta.root,
        universe: meta.universe,
        bounds: meta.bounds,
        num_points: meta.num_points,
        bucket_capacity: meta.bucket_capacity,
        levels_per_node: meta.levels_per_node,
        max_depth: meta.max_depth,
        use_subtree_mbrs: meta.use_subtree_mbrs,
        cache: Arc::new(ann_core::node_cache::NodeCache::default()),
        versions: None,
    })
}

/// Loads a tree from its meta page; see [`Mbrqt::open`].
pub(crate) fn load<const D: usize>(
    pool: Arc<BufferPool>,
    meta_page: PageId,
    journal: Journal,
) -> Result<Mbrqt<D>> {
    let direct = Arc::clone(&pool);
    load_via(direct.as_ref(), pool, meta_page, journal)
}

/// [`ann_core::snapshot::MetaReader`] for MBRQT: parses the version-pinned
/// meta fields through a snapshot's translation table.
pub(crate) fn snapshot_meta_fields<const D: usize>(
    snap: &Snapshot,
    meta_page: PageId,
) -> Result<MetaFields<D>> {
    let meta = snap.with_page(meta_page, |bytes| parse::<D>(bytes))??;
    Ok(MetaFields {
        root: meta.root,
        num_points: meta.num_points,
        bounds: meta.bounds,
    })
}
