//! Metadata-page persistence for [`Mbrqt`].

use crate::Mbrqt;
use ann_geom::Mbr;
use ann_store::{BufferPool, Journal, PageId, PageStore, Result, StoreError};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"MBRQTv1\0";

/// Serializes the tree's metadata into its meta page through `store` —
/// normally a [`ann_store::Txn`], so the meta update commits atomically
/// with the structural changes it describes.
pub(crate) fn save_to<const D: usize>(tree: &Mbrqt<D>, store: &impl PageStore) -> Result<()> {
    store.with_page_mut(tree.meta_page, |bytes| {
        let mut at = 0usize;
        let mut put = |src: &[u8]| {
            bytes[at..at + src.len()].copy_from_slice(src);
            at += src.len();
        };
        put(MAGIC);
        put(&(D as u32).to_le_bytes());
        put(&tree.root.to_le_bytes());
        put(&tree.num_points.to_le_bytes());
        put(&(tree.bucket_capacity as u32).to_le_bytes());
        put(&(tree.levels_per_node as u32).to_le_bytes());
        put(&(tree.max_depth as u32).to_le_bytes());
        put(&[u8::from(tree.use_subtree_mbrs), 0, 0, 0]);
        for d in 0..D {
            put(&tree.universe.lo[d].to_le_bytes());
        }
        for d in 0..D {
            put(&tree.universe.hi[d].to_le_bytes());
        }
        for d in 0..D {
            put(&tree.bounds.lo[d].to_le_bytes());
        }
        for d in 0..D {
            put(&tree.bounds.hi[d].to_le_bytes());
        }
    })
}

/// Loads a tree from its meta page; see [`Mbrqt::open`].
pub(crate) fn load<const D: usize>(
    pool: Arc<BufferPool>,
    meta_page: PageId,
    journal: Journal,
) -> Result<Mbrqt<D>> {
    let (
        root,
        num_points,
        bucket_capacity,
        levels_per_node,
        max_depth,
        use_subtree_mbrs,
        universe,
        bounds,
    ) = pool.with_page(meta_page, |bytes| -> Result<_> {
        if &bytes[0..8] != MAGIC {
            return Err(StoreError::corrupt("not an MBRQT meta page"));
        }
        let mut at = 8usize;
        let mut take = |n: usize| {
            let s = &bytes[at..at + n];
            at += n;
            s
        };
        let dim = u32::from_le_bytes(take(4).try_into().unwrap());
        if dim as usize != D {
            return Err(StoreError::corrupt("dimensionality mismatch"));
        }
        let root = u32::from_le_bytes(take(4).try_into().unwrap());
        let num_points = u64::from_le_bytes(take(8).try_into().unwrap());
        let bucket_capacity = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
        let levels_per_node = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
        let max_depth = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
        let use_subtree_mbrs = take(4)[0] != 0;
        let mut mbrs = [Mbr::<D>::empty(), Mbr::<D>::empty()];
        for m in mbrs.iter_mut() {
            let mut lo = [0.0; D];
            let mut hi = [0.0; D];
            for v in lo.iter_mut() {
                *v = f64::from_le_bytes(take(8).try_into().unwrap());
            }
            for v in hi.iter_mut() {
                *v = f64::from_le_bytes(take(8).try_into().unwrap());
            }
            *m = Mbr { lo, hi };
        }
        Ok((
            root,
            num_points,
            bucket_capacity,
            levels_per_node,
            max_depth,
            use_subtree_mbrs,
            mbrs[0],
            mbrs[1],
        ))
    })??;
    Ok(Mbrqt {
        pool,
        meta_page,
        journal,
        root,
        universe,
        bounds,
        num_points,
        bucket_capacity,
        levels_per_node,
        max_depth,
        use_subtree_mbrs,
        cache: ann_core::node_cache::NodeCache::default(),
    })
}
