//! Top-down bulk construction of an MBRQT.

use crate::{cell_of_point, cell_quadrant, Mbrqt, MbrqtConfig};
use ann_core::extsort::PointSpill;
use ann_core::node::{write_node, Entry, Node, NodeEntry, ObjectEntry};
use ann_core::trace::{Phase, Side, TraceEvent, Tracer};
use ann_geom::{Mbr, Point};
use ann_store::BufferPool;
use ann_store::{PageStore, Result, StoreError, Txn};
use std::sync::Arc;

/// Builds the tree for `points`; see [`Mbrqt::bulk_build`].
pub(crate) fn bulk_build<const D: usize>(
    pool: Arc<BufferPool>,
    points: &[(u64, Point<D>)],
    config: &MbrqtConfig,
    side: Side,
    tracer: Tracer<'_>,
) -> Result<Mbrqt<D>> {
    if points.iter().any(|(_, p)| !p.is_finite()) {
        return Err(StoreError::corrupt("points must have finite coordinates"));
    }
    let io_now = || pool.stats();
    let span_b = tracer.span_enter(Phase::Build, io_now);
    let bounds = Mbr::from_points(points.iter().map(|(_, p)| p));
    // The universe needs positive extent in every dimension for halving to
    // make progress; degenerate (or empty) input gets a unit-padded box.
    let universe = if points.is_empty() {
        Mbr::new([0.0; D], {
            let mut hi = [0.0; D];
            hi.iter_mut().for_each(|v| *v = 1.0);
            hi
        })
    } else {
        let mut u = bounds;
        for d in 0..D {
            if u.extent(d) <= 0.0 {
                u.hi[d] = u.lo[d] + 1.0;
            }
        }
        u
    };

    let meta_page = pool.allocate()?;
    let journal = crate::create_journal_after_meta(&pool, meta_page)?;
    let bucket_capacity = config.resolved_bucket_capacity::<D>();
    let levels_per_node = config.resolved_levels_per_node::<D>();
    // Node pages are written straight through the pool (journaling the
    // whole build would double its I/O for no benefit): until the meta
    // page is committed below, nothing references them, so a crash
    // mid-build leaves an unopenable meta page — `open` then fails with
    // `Corrupt` instead of exposing a partial tree.
    let mut builder = Builder {
        store: pool.as_ref(),
        bucket_capacity,
        levels_per_node,
        max_depth: config.max_depth,
        use_subtree_mbrs: config.use_subtree_mbrs,
        level_tally: tracer.enabled().then(Vec::new),
    };
    let mut owned: Vec<(u64, Point<D>)> = points.to_vec();
    let root_entry = builder.build(&mut owned, universe, 0, 0)?;
    if let Some(tally) = builder.level_tally.take() {
        for (level, &nodes) in tally.iter().enumerate() {
            if nodes > 0 {
                tracer.event(|| TraceEvent::IndexLevelBuilt {
                    side,
                    level: level as u32,
                    nodes,
                });
            }
        }
    }

    let tree = Mbrqt {
        pool: Arc::clone(&pool),
        meta_page,
        journal,
        root: root_entry.page,
        universe,
        bounds,
        num_points: points.len() as u64,
        bucket_capacity,
        levels_per_node,
        max_depth: config.max_depth,
        use_subtree_mbrs: config.use_subtree_mbrs,
        cache: Arc::new(ann_core::node_cache::NodeCache::default()),
        versions: None,
    };
    // Make every node page durable before the meta page can point at
    // them, then commit the meta page through the journal.
    pool.flush_all()?;
    let txn = Txn::begin(&pool, journal);
    tree.save_meta_to(&txn)?;
    txn.commit()?;
    tracer.span_exit(Phase::Build, span_b, io_now);
    Ok(tree)
}

/// Builds the tree from a point *stream*; see [`Mbrqt::bulk_build_stream`].
///
/// The quadtree's distribution partitioning externalizes naturally: the
/// stream is consumed once into a raw spill on `scratch` (computing the
/// bounds that fix the universe), and each oversized partition is split
/// into per-cell child spills by one sequential scan. A partition that
/// fits `memory_budget` records materializes and delegates to the
/// in-memory [`Builder`] — from there down the tree is built by exactly
/// the same decisions as [`bulk_build`], so the streaming build produces
/// the *identical* tree structure for the same input set (partitioning by
/// cell is order-preserving per cell, and `Builder::build` re-partitions
/// the same cells the external pass did).
pub(crate) fn bulk_build_stream<const D: usize>(
    pool: Arc<BufferPool>,
    scratch: Arc<BufferPool>,
    points: impl IntoIterator<Item = (u64, Point<D>)>,
    memory_budget: usize,
    config: &MbrqtConfig,
    side: Side,
    tracer: Tracer<'_>,
) -> Result<Mbrqt<D>> {
    let io_now = || pool.stats();
    let span_b = tracer.span_enter(Phase::Build, io_now);
    // Pass 1: spill the stream, computing bounds (and the finite check).
    let spill = PointSpill::consume(Arc::clone(&scratch), points)?;
    let bounds = spill.bounds;
    let universe = if spill.len == 0 {
        Mbr::new([0.0; D], {
            let mut hi = [0.0; D];
            hi.iter_mut().for_each(|v| *v = 1.0);
            hi
        })
    } else {
        let mut u = bounds;
        for d in 0..D {
            if u.extent(d) <= 0.0 {
                u.hi[d] = u.lo[d] + 1.0;
            }
        }
        u
    };

    let meta_page = pool.allocate()?;
    let journal = crate::create_journal_after_meta(&pool, meta_page)?;
    let bucket_capacity = config.resolved_bucket_capacity::<D>();
    let levels_per_node = config.resolved_levels_per_node::<D>();
    let mut builder = Builder {
        store: pool.as_ref(),
        bucket_capacity,
        levels_per_node,
        max_depth: config.max_depth,
        use_subtree_mbrs: config.use_subtree_mbrs,
        level_tally: tracer.enabled().then(Vec::new),
    };
    // A budget below one bucket would materialize less than a leaf holds.
    let budget = memory_budget.max(bucket_capacity).max(1);
    let root_entry = build_external(&mut builder, &scratch, &spill, universe, 0, 0, budget)?;
    if let Some(tally) = builder.level_tally.take() {
        for (level, &nodes) in tally.iter().enumerate() {
            if nodes > 0 {
                tracer.event(|| TraceEvent::IndexLevelBuilt {
                    side,
                    level: level as u32,
                    nodes,
                });
            }
        }
    }

    let tree = Mbrqt {
        pool: Arc::clone(&pool),
        meta_page,
        journal,
        root: root_entry.page,
        universe,
        bounds,
        num_points: spill.len,
        bucket_capacity,
        levels_per_node,
        max_depth: config.max_depth,
        use_subtree_mbrs: config.use_subtree_mbrs,
        cache: Arc::new(ann_core::node_cache::NodeCache::default()),
        versions: None,
    };
    pool.flush_all()?;
    let txn = Txn::begin(&pool, journal);
    tree.save_meta_to(&txn)?;
    txn.commit()?;
    tracer.span_exit(Phase::Build, span_b, io_now);
    Ok(tree)
}

/// One step of the external distribution partitioning: materialize when
/// the partition fits the budget (or the depth budget is exhausted —
/// heavy duplicates stop making partitioning progress, exactly as in the
/// in-memory build), otherwise split into per-cell spills and recurse.
fn build_external<const D: usize, S: PageStore>(
    builder: &mut Builder<'_, S>,
    scratch: &Arc<BufferPool>,
    part: &PointSpill<D>,
    quadrant: Mbr<D>,
    depth: usize,
    level: u32,
    budget: usize,
) -> Result<NodeEntry<D>> {
    if part.len as usize <= budget || depth >= builder.max_depth {
        let mut pts: Vec<(u64, Point<D>)> = Vec::with_capacity(part.len as usize);
        part.replay(|oid, p| {
            pts.push((oid, p));
            Ok(())
        })?;
        return builder.build(&mut pts, quadrant, depth, level);
    }
    if let Some(tally) = builder.level_tally.as_mut() {
        let level = level as usize;
        if tally.len() <= level {
            tally.resize(level + 1, 0);
        }
        tally[level] += 1;
    }
    // Same cell decomposition `Builder::build` would pick at this node.
    let levels = builder.pick_levels::<D>(part.len as usize, depth);
    let mut parts: Vec<(usize, PointSpill<D>)> = Vec::new();
    part.replay(|oid, p| {
        let idx = cell_of_point(&quadrant, &p, levels);
        match parts.binary_search_by_key(&idx, |(i, _)| *i) {
            Ok(at) => parts[at].1.push(oid, p),
            Err(at) => {
                let mut child = PointSpill::create(Arc::clone(scratch))?;
                child.push(oid, p)?;
                parts.insert(at, (idx, child));
                Ok(())
            }
        }
    })?;
    let mut node = Node {
        is_leaf: false,
        aux: 0,
        mbr: Mbr::empty(),
        entries: Vec::with_capacity(parts.len()),
    };
    for (idx, child) in parts {
        let child_q = cell_quadrant(&quadrant, idx, levels);
        let entry = build_external(
            builder,
            scratch,
            &child,
            child_q,
            depth + levels,
            level + 1,
            budget,
        )?;
        node.entries.push(Entry::Node(entry));
    }
    node.recompute_mbr();
    node.aux = levels as u8;
    let count = node.count();
    let page = builder.store.allocate()?;
    write_node(builder.store, page, &node)?;
    Ok(NodeEntry {
        page,
        count,
        mbr: if builder.use_subtree_mbrs {
            node.mbr
        } else {
            quadrant
        },
    })
}

pub(crate) struct Builder<'a, S: PageStore> {
    pub(crate) store: &'a S,
    pub(crate) bucket_capacity: usize,
    pub(crate) levels_per_node: usize,
    pub(crate) max_depth: usize,
    pub(crate) use_subtree_mbrs: bool,
    /// When tracing a bulk build: nodes written per disk-node level
    /// (index = distance from the subtree root being built).
    pub(crate) level_tally: Option<Vec<u64>>,
}

impl<S: PageStore> Builder<'_, S> {
    /// Recursively builds the subtree for `points` within `quadrant`,
    /// returning the child entry describing it. `points` is consumed
    /// (drained into leaves or partitions). `depth` counts quadtree
    /// decomposition levels (for the `max_depth` budget); `level` counts
    /// disk nodes from the subtree root (for the build tally only).
    pub(crate) fn build<const D: usize>(
        &mut self,
        points: &mut Vec<(u64, Point<D>)>,
        quadrant: Mbr<D>,
        depth: usize,
        level: u32,
    ) -> Result<NodeEntry<D>> {
        if let Some(tally) = self.level_tally.as_mut() {
            let level = level as usize;
            if tally.len() <= level {
                tally.resize(level + 1, 0);
            }
            tally[level] += 1;
        }
        if points.len() <= self.bucket_capacity || depth >= self.max_depth {
            return self.write_leaf(points, &quadrant);
        }
        // Partition into the 2^(D * levels) cells of this node's packed
        // decomposition, choosing just enough levels that the expected
        // cell population is bucket-sized — deeper packing on a small node
        // would scatter one bucket across many near-empty leaf pages.
        // Only non-empty cells are materialized (sparse, sorted vector
        // keyed by cell index).
        let levels = self.pick_levels::<D>(points.len(), depth);
        let mut parts: Vec<(usize, Vec<(u64, Point<D>)>)> = Vec::new();
        for (oid, p) in points.drain(..) {
            let idx = cell_of_point(&quadrant, &p, levels);
            match parts.binary_search_by_key(&idx, |(i, _)| *i) {
                Ok(at) => parts[at].1.push((oid, p)),
                Err(at) => parts.insert(at, (idx, vec![(oid, p)])),
            }
        }
        // Degenerate split (all points in one cell at every level) is
        // bounded by max_depth; recursion proceeds normally here.
        let mut node = Node {
            is_leaf: false,
            aux: 0,
            mbr: Mbr::empty(),
            entries: Vec::with_capacity(parts.len()),
        };
        for (idx, mut part) in parts {
            let child_q = cell_quadrant(&quadrant, idx, levels);
            let entry = self.build(&mut part, child_q, depth + levels, level + 1)?;
            node.entries.push(Entry::Node(entry));
        }
        node.recompute_mbr();
        node.aux = levels as u8;
        let count = node.count();
        let page = self.store.allocate()?;
        write_node(self.store, page, &node)?;
        Ok(NodeEntry {
            page,
            count,
            mbr: if self.use_subtree_mbrs {
                node.mbr
            } else {
                quadrant
            },
        })
    }

    /// Decomposition levels for a node over `n` points at `depth`: enough
    /// halvings that cells come out bucket-sized, capped by the per-page
    /// packing limit and the remaining depth budget.
    pub(crate) fn pick_levels<const D: usize>(&self, n: usize, depth: usize) -> usize {
        let ratio = (n.max(1) as f64 / self.bucket_capacity.max(1) as f64).max(2.0);
        let needed = (ratio.log2() / D as f64).ceil() as usize;
        needed
            .clamp(1, self.levels_per_node)
            .min((self.max_depth - depth).max(1))
    }

    fn write_leaf<const D: usize>(
        &mut self,
        points: &mut Vec<(u64, Point<D>)>,
        quadrant: &Mbr<D>,
    ) -> Result<NodeEntry<D>> {
        let mut node = Node {
            is_leaf: true,
            aux: 0,
            mbr: Mbr::empty(),
            entries: points
                .drain(..)
                .map(|(oid, point)| Entry::Object(ObjectEntry { oid, point }))
                .collect(),
        };
        node.recompute_mbr();
        let count = node.entries.len() as u64;
        // Leaves always carry their tight MBR in `node.mbr`; the parent
        // entry's MBR is the ablation knob.
        let entry_mbr = if self.use_subtree_mbrs || count == 0 {
            node.mbr
        } else {
            *quadrant
        };
        let page = self.store.allocate()?;
        write_node(self.store, page, &node)?;
        Ok(NodeEntry {
            page,
            count,
            mbr: entry_mbr,
        })
    }
}
