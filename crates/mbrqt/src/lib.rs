//! **MBRQT** — the MBR-enhanced disk-resident PR bucket quadtree
//! (paper §3.2).
//!
//! A PR bucket quadtree decomposes a fixed universe by regular halving:
//! every internal node splits its quadrant into `2^D` orthants around the
//! quadrant center, and points live in leaf buckets. Regular decomposition
//! gives quadtrees two properties the paper exploits for ANN:
//!
//! * sibling subtrees never overlap (unlike R*-tree MBRs), and
//! * both indices of a join decompose space *identically*, so pruning
//!   metrics compare like against like.
//!
//! Plain quadtrees have one fatal flaw for ANN, though: neighboring
//! quadrants touch, so `MINMINDIST` between them is 0 and lower-bound
//! pruning never fires. The paper's enhancement — the "MBR" in MBRQT — is
//! to store, with every child entry, the **tight minimum bounding
//! rectangle of the points below it** instead of the quadrant box.
//! [`MbrqtConfig::use_subtree_mbrs`] keeps the plain-quadrant variant
//! available as an ablation.
//!
//! **Soundness note for the ablation:** quadrant boxes are not *minimum*
//! bounding rectangles, and the NXNDIST upper bound is only valid against
//! minimal MBRs (its guarantee rests on every face of the target rectangle
//! touching a point). With `use_subtree_mbrs = false` the index must be
//! queried with the `MAXMAXDIST` metric; with the default `true` both
//! metrics are sound.
//!
//! Nodes are serialized one-per-page with the shared codec in
//! [`ann_core::node`]; in high dimensions (`2^D` children) a node
//! transparently chains continuation pages.
//!
//! # Example
//!
//! ```
//! use ann_geom::{Mbr, Point};
//! use ann_mbrqt::{Mbrqt, MbrqtConfig};
//! use ann_store::{BufferPool, MemDisk};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(MemDisk::new(), 64));
//! let pts: Vec<(u64, Point<2>)> = (0..1000)
//!     .map(|i| (i, Point::new([(i % 37) as f64, (i % 91) as f64])))
//!     .collect();
//! let tree = Mbrqt::bulk_build(pool, &pts, &MbrqtConfig::default()).unwrap();
//! assert_eq!(ann_core::index::validate(&tree).unwrap().objects, 1000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod delete;
mod insert;
mod meta;

use ann_core::index::SpatialIndex;
use ann_core::node_cache::NodeCache;
use ann_core::node::Node;
use ann_core::trace::{Side, Tracer};
use ann_geom::{Mbr, Point};
use ann_store::{BufferPool, Journal, PageId, PageStore, Result, StoreError, Txn};
use std::sync::Arc;

/// Tuning knobs for [`Mbrqt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MbrqtConfig {
    /// Leaf bucket capacity. `0` means "whatever fills one leaf page".
    pub bucket_capacity: usize,
    /// Quadtree decomposition levels packed into one disk node, so an
    /// internal node has up to `2^(D * levels)` children. `0` picks the
    /// largest value whose full fanout still fits one page — disk-resident
    /// quadtrees pack several levels per page because a raw `2^D`-way node
    /// would waste almost the whole page in low dimensions (cf. Hjaltason
    /// & Samet's PMR-quadtree paging).
    pub levels_per_node: usize,
    /// Maximum tree depth; a bucket at this depth is allowed to overflow
    /// into chained pages instead of splitting further (this is what makes
    /// heavily duplicated points safe).
    pub max_depth: usize,
    /// Store tight subtree MBRs on child entries (the paper's MBRQT).
    /// `false` stores the raw quadrant boxes — the plain-quadtree ablation,
    /// only sound with the `MAXMAXDIST` metric (see the crate docs).
    pub use_subtree_mbrs: bool,
}

impl Default for MbrqtConfig {
    fn default() -> Self {
        MbrqtConfig {
            bucket_capacity: 0,
            levels_per_node: 0,
            max_depth: 48,
            use_subtree_mbrs: true,
        }
    }
}

impl MbrqtConfig {
    /// Resolves `bucket_capacity == 0` to the page-derived default.
    pub(crate) fn resolved_bucket_capacity<const D: usize>(&self) -> usize {
        if self.bucket_capacity > 0 {
            self.bucket_capacity
        } else {
            Node::<D>::single_page_capacity(true)
        }
    }

    /// Resolves `levels_per_node == 0` to the deepest packing whose full
    /// fanout fits a single page (at least 1).
    pub(crate) fn resolved_levels_per_node<const D: usize>(&self) -> usize {
        if self.levels_per_node > 0 {
            return self.levels_per_node;
        }
        let cap = Node::<D>::single_page_capacity(false);
        let mut levels = 1usize;
        while D * (levels + 1) < usize::BITS as usize - 1 && (1usize << (D * (levels + 1))) <= cap {
            levels += 1;
        }
        levels
    }
}

/// A disk-resident MBR-enhanced PR bucket quadtree.
pub struct Mbrqt<const D: usize> {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) meta_page: PageId,
    pub(crate) journal: Journal,
    pub(crate) root: PageId,
    /// The fixed universe this tree decomposes.
    pub(crate) universe: Mbr<D>,
    /// Tight bounds over the indexed points.
    pub(crate) bounds: Mbr<D>,
    pub(crate) num_points: u64,
    pub(crate) bucket_capacity: usize,
    pub(crate) levels_per_node: usize,
    pub(crate) max_depth: usize,
    pub(crate) use_subtree_mbrs: bool,
    /// Decoded-node cache for query traversals; its epoch is bumped on
    /// every structural mutation (insert/delete).
    pub(crate) cache: NodeCache<D>,
}

impl<const D: usize> Mbrqt<D> {
    /// Creates an empty tree over the given fixed `universe`.
    ///
    /// Points inserted later must lie inside the universe; PR quadtrees
    /// decompose a fixed space, so the universe cannot grow afterwards.
    pub fn create(pool: Arc<BufferPool>, universe: Mbr<D>, config: &MbrqtConfig) -> Result<Self> {
        if universe.is_empty() {
            return Err(StoreError::corrupt("quadtree universe must be non-empty"));
        }
        let meta_page = pool.allocate()?;
        let journal = crate::create_journal_after_meta(&pool, meta_page)?;
        let txn = Txn::begin(&pool, journal);
        let root = txn.allocate()?;
        ann_core::node::write_node::<D>(&txn, root, &Node::empty_leaf())?;
        let tree = Mbrqt {
            pool: Arc::clone(&pool),
            meta_page,
            journal,
            root,
            universe,
            bounds: Mbr::empty(),
            num_points: 0,
            bucket_capacity: config.resolved_bucket_capacity::<D>(),
            levels_per_node: config.resolved_levels_per_node::<D>(),
            max_depth: config.max_depth,
            use_subtree_mbrs: config.use_subtree_mbrs,
            cache: NodeCache::default(),
        };
        tree.save_meta_to(&txn)?;
        txn.commit()?;
        Ok(tree)
    }

    /// Builds a tree over `points` in one top-down pass. The universe is
    /// the tight bounding box of the input.
    pub fn bulk_build(
        pool: Arc<BufferPool>,
        points: &[(u64, Point<D>)],
        config: &MbrqtConfig,
    ) -> Result<Self> {
        build::bulk_build(pool, points, config, Side::R, Tracer::disabled())
    }

    /// [`bulk_build`](Self::bulk_build) with an attached
    /// [`Tracer`]: wraps construction in a `Build` span (pool I/O deltas
    /// included) and emits one [`ann_core::trace::TraceEvent::IndexLevelBuilt`] per disk
    /// level, tagged with `side` so a joined pair of builds stays
    /// distinguishable in the report. With `Tracer::disabled()` this is
    /// exactly [`bulk_build`](Self::bulk_build).
    pub fn bulk_build_traced(
        pool: Arc<BufferPool>,
        points: &[(u64, Point<D>)],
        config: &MbrqtConfig,
        side: Side,
        tracer: Tracer<'_>,
    ) -> Result<Self> {
        build::bulk_build(pool, points, config, side, tracer)
    }

    /// Builds a tree from a point *stream*, keeping memory bounded by
    /// `memory_budget` records: the stream spills to `scratch` (fixing
    /// the universe from the computed bounds) and oversized partitions
    /// split externally, cell by cell, until they fit the budget — from
    /// there down construction delegates to the same in-memory builder as
    /// [`bulk_build`](Self::bulk_build), so the resulting tree structure
    /// is identical to what `bulk_build` would produce for the same
    /// input.
    ///
    /// `scratch` holds only temporary spill pages — give it its own pool
    /// so spill traffic cannot evict the tree's pages from `pool`.
    pub fn bulk_build_stream(
        pool: Arc<BufferPool>,
        scratch: Arc<BufferPool>,
        points: impl IntoIterator<Item = (u64, Point<D>)>,
        memory_budget: usize,
        config: &MbrqtConfig,
    ) -> Result<Self> {
        build::bulk_build_stream(
            pool,
            scratch,
            points,
            memory_budget,
            config,
            Side::R,
            Tracer::disabled(),
        )
    }

    /// [`bulk_build_stream`](Self::bulk_build_stream) with an attached
    /// [`Tracer`] (build span + per-level node tallies).
    pub fn bulk_build_stream_traced(
        pool: Arc<BufferPool>,
        scratch: Arc<BufferPool>,
        points: impl IntoIterator<Item = (u64, Point<D>)>,
        memory_budget: usize,
        config: &MbrqtConfig,
        side: Side,
        tracer: Tracer<'_>,
    ) -> Result<Self> {
        build::bulk_build_stream(pool, scratch, points, memory_budget, config, side, tracer)
    }

    /// Opens a previously built tree from its metadata page.
    ///
    /// Opening runs crash recovery first — a committed-but-unapplied
    /// journal batch is replayed, a partial one is discarded — and then
    /// verifies every structural invariant with
    /// [`ann_core::index::validate`], so an `Ok` tree is never silently
    /// partial: after any mid-update crash this either restores a
    /// consistent tree or reports [`StoreError::Corrupt`].
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<Self> {
        let (journal, _recovery) = Journal::open(&pool, meta_page + 1)?;
        let tree = meta::load(pool, meta_page, journal)?;
        ann_core::index::validate(&tree)?;
        Ok(tree)
    }

    /// The metadata page identifying this tree on disk.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// The fixed universe the tree decomposes.
    pub fn universe(&self) -> Mbr<D> {
        self.universe
    }

    /// Leaf bucket capacity in use.
    pub fn bucket_capacity(&self) -> usize {
        self.bucket_capacity
    }

    /// Decomposition levels packed per disk node (node fanout is up to
    /// `2^(D * levels_per_node)`).
    pub fn levels_per_node(&self) -> usize {
        self.levels_per_node
    }

    /// Whether entries carry tight subtree MBRs (`true` for real MBRQT).
    pub fn uses_subtree_mbrs(&self) -> bool {
        self.use_subtree_mbrs
    }

    /// Inserts one point. Fails if the point is non-finite or outside the
    /// universe.
    pub fn insert(&mut self, oid: u64, point: Point<D>) -> Result<()> {
        insert::insert(self, oid, point)?;
        self.cache.bump_epoch();
        Ok(())
    }

    /// Deletes the object `(oid, point)` (both must match an indexed
    /// object exactly). Internal nodes whose subtrees shrink to bucket
    /// size collapse back into single leaf buckets. Returns whether the
    /// object existed.
    pub fn delete(&mut self, oid: u64, point: &Point<D>) -> Result<bool> {
        let existed = delete::delete(self, oid, point)?;
        if existed {
            self.cache.bump_epoch();
        }
        Ok(existed)
    }

    /// Writes all dirty pages through to the backing disk.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }

    pub(crate) fn save_meta_to(&self, store: &impl PageStore) -> Result<()> {
        meta::save_to(self, store)
    }
}

impl<const D: usize> SpatialIndex<D> for Mbrqt<D> {
    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn root_page(&self) -> PageId {
        self.root
    }

    fn num_points(&self) -> u64 {
        self.num_points
    }

    fn bounds(&self) -> Mbr<D> {
        self.bounds
    }

    fn node_cache(&self) -> Option<&NodeCache<D>> {
        Some(&self.cache)
    }
}

/// Creates the tree's journal right after its freshly allocated meta page,
/// enforcing the `meta_page + 1` adjacency convention that lets
/// [`Mbrqt::open`] find the journal without persisting its id anywhere.
/// Interleaved allocations from another thread would break the convention,
/// so that is reported as an error rather than silently accepted.
pub(crate) fn create_journal_after_meta(pool: &BufferPool, meta_page: PageId) -> Result<Journal> {
    let journal = Journal::create(pool)?;
    if journal.header_page() != meta_page + 1 {
        return Err(StoreError::corrupt(
            "journal header page must immediately follow the meta page",
        ));
    }
    Ok(journal)
}

/// The orthant (child index in `0..2^D`) of `point` within a quadrant
/// centered at `center`: bit `d` is set when `point[d] >= center[d]`.
#[inline]
pub(crate) fn orthant_of<const D: usize>(point: &Point<D>, center: &Point<D>) -> usize {
    let mut idx = 0;
    for d in 0..D {
        if point[d] >= center[d] {
            idx |= 1 << d;
        }
    }
    idx
}

/// The grid cell (in `0..2^(D*levels)`) of `point` after `levels` rounds
/// of regular halving of `quadrant`. Level 0 provides the most significant
/// `D` bits of the index.
#[inline]
pub(crate) fn cell_of_point<const D: usize>(
    quadrant: &Mbr<D>,
    point: &Point<D>,
    levels: usize,
) -> usize {
    let mut q = *quadrant;
    let mut idx = 0usize;
    for _ in 0..levels {
        let center = q.center();
        let o = orthant_of(point, &center);
        idx = (idx << D) | o;
        q = child_quadrant(&q, o);
    }
    idx
}

/// The quadrant box of grid cell `cell` (as produced by [`cell_of_point`])
/// within `quadrant`.
#[inline]
pub(crate) fn cell_quadrant<const D: usize>(
    quadrant: &Mbr<D>,
    cell: usize,
    levels: usize,
) -> Mbr<D> {
    let mut q = *quadrant;
    let mask = (1usize << D) - 1;
    for level in (0..levels).rev() {
        let o = (cell >> (level * D)) & mask;
        q = child_quadrant(&q, o);
    }
    q
}

/// Recovers the grid cell of a child entry from its stored MBR's lower
/// corner (see [`orthant_of_mbr`] for why the lower corner classifies
/// correctly at every level).
#[inline]
pub(crate) fn cell_of_mbr<const D: usize>(quadrant: &Mbr<D>, mbr: &Mbr<D>, levels: usize) -> usize {
    cell_of_point(quadrant, &Point::new(mbr.lo), levels)
}

/// The quadrant box of orthant `idx` within `quadrant`.
#[inline]
pub(crate) fn child_quadrant<const D: usize>(quadrant: &Mbr<D>, idx: usize) -> Mbr<D> {
    let center = quadrant.center();
    let mut lo = quadrant.lo;
    let mut hi = quadrant.hi;
    for d in 0..D {
        if idx & (1 << d) != 0 {
            lo[d] = center[d];
        } else {
            hi[d] = center[d];
        }
    }
    Mbr::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthant_round_trips_through_child_quadrant() {
        let q = Mbr::new([0.0, 0.0, 0.0], [8.0, 8.0, 8.0]);
        let center = q.center();
        for idx in 0..8usize {
            let child = child_quadrant(&q, idx);
            // Any interior point of the child maps back to idx.
            let probe = child.center();
            assert_eq!(orthant_of(&probe, &center), idx);
            assert_eq!(cell_of_mbr(&q, &child, 1), idx);
        }
    }

    #[test]
    fn center_plane_points_go_to_upper_orthant() {
        let q = Mbr::new([0.0, 0.0], [4.0, 4.0]);
        let center = q.center();
        assert_eq!(orthant_of(&Point::new([2.0, 2.0]), &center), 0b11);
        assert_eq!(orthant_of(&Point::new([2.0, 1.0]), &center), 0b01);
        assert_eq!(orthant_of(&Point::new([1.0, 2.0]), &center), 0b10);
    }

    #[test]
    fn child_quadrants_partition_parent() {
        let q = Mbr::new([-2.0, 3.0], [6.0, 11.0]);
        let mut vol = 0.0;
        for idx in 0..4 {
            let c = child_quadrant(&q, idx);
            assert!(q.contains(&c));
            vol += c.volume();
        }
        assert!((vol - q.volume()).abs() < 1e-9);
    }
}
