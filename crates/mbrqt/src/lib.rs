//! **MBRQT** — the MBR-enhanced disk-resident PR bucket quadtree
//! (paper §3.2).
//!
//! A PR bucket quadtree decomposes a fixed universe by regular halving:
//! every internal node splits its quadrant into `2^D` orthants around the
//! quadrant center, and points live in leaf buckets. Regular decomposition
//! gives quadtrees two properties the paper exploits for ANN:
//!
//! * sibling subtrees never overlap (unlike R*-tree MBRs), and
//! * both indices of a join decompose space *identically*, so pruning
//!   metrics compare like against like.
//!
//! Plain quadtrees have one fatal flaw for ANN, though: neighboring
//! quadrants touch, so `MINMINDIST` between them is 0 and lower-bound
//! pruning never fires. The paper's enhancement — the "MBR" in MBRQT — is
//! to store, with every child entry, the **tight minimum bounding
//! rectangle of the points below it** instead of the quadrant box.
//! [`MbrqtConfig::use_subtree_mbrs`] keeps the plain-quadrant variant
//! available as an ablation.
//!
//! **Soundness note for the ablation:** quadrant boxes are not *minimum*
//! bounding rectangles, and the NXNDIST upper bound is only valid against
//! minimal MBRs (its guarantee rests on every face of the target rectangle
//! touching a point). With `use_subtree_mbrs = false` the index must be
//! queried with the `MAXMAXDIST` metric; with the default `true` both
//! metrics are sound.
//!
//! Nodes are serialized one-per-page with the shared codec in
//! [`ann_core::node`]; in high dimensions (`2^D` children) a node
//! transparently chains continuation pages.
//!
//! # Example
//!
//! ```
//! use ann_geom::{Mbr, Point};
//! use ann_mbrqt::{Mbrqt, MbrqtConfig};
//! use ann_store::{BufferPool, MemDisk};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(MemDisk::new(), 64));
//! let pts: Vec<(u64, Point<2>)> = (0..1000)
//!     .map(|i| (i, Point::new([(i % 37) as f64, (i % 91) as f64])))
//!     .collect();
//! let tree = Mbrqt::bulk_build(pool, &pts, &MbrqtConfig::default()).unwrap();
//! assert_eq!(ann_core::index::validate(&tree).unwrap().objects, 1000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod delete;
mod insert;
mod meta;

use ann_core::index::SpatialIndex;
use ann_core::node_cache::NodeCache;
use ann_core::node::Node;
use ann_core::snapshot::VersionedHandle;
use ann_core::trace::{Side, Tracer};
use ann_geom::{Mbr, Point};
use ann_store::{
    BufferPool, Journal, PageId, PageStore, Result, StoreError, Txn, VersionedStore,
};
use std::sync::Arc;

/// Tuning knobs for [`Mbrqt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MbrqtConfig {
    /// Leaf bucket capacity. `0` means "whatever fills one leaf page".
    pub bucket_capacity: usize,
    /// Quadtree decomposition levels packed into one disk node, so an
    /// internal node has up to `2^(D * levels)` children. `0` picks the
    /// largest value whose full fanout still fits one page — disk-resident
    /// quadtrees pack several levels per page because a raw `2^D`-way node
    /// would waste almost the whole page in low dimensions (cf. Hjaltason
    /// & Samet's PMR-quadtree paging).
    pub levels_per_node: usize,
    /// Maximum tree depth; a bucket at this depth is allowed to overflow
    /// into chained pages instead of splitting further (this is what makes
    /// heavily duplicated points safe).
    pub max_depth: usize,
    /// Store tight subtree MBRs on child entries (the paper's MBRQT).
    /// `false` stores the raw quadrant boxes — the plain-quadtree ablation,
    /// only sound with the `MAXMAXDIST` metric (see the crate docs).
    pub use_subtree_mbrs: bool,
}

impl Default for MbrqtConfig {
    fn default() -> Self {
        MbrqtConfig {
            bucket_capacity: 0,
            levels_per_node: 0,
            max_depth: 48,
            use_subtree_mbrs: true,
        }
    }
}

impl MbrqtConfig {
    /// Resolves `bucket_capacity == 0` to the page-derived default.
    pub(crate) fn resolved_bucket_capacity<const D: usize>(&self) -> usize {
        if self.bucket_capacity > 0 {
            self.bucket_capacity
        } else {
            Node::<D>::single_page_capacity(true)
        }
    }

    /// Resolves `levels_per_node == 0` to the deepest packing whose full
    /// fanout fits a single page (at least 1).
    pub(crate) fn resolved_levels_per_node<const D: usize>(&self) -> usize {
        if self.levels_per_node > 0 {
            return self.levels_per_node;
        }
        let cap = Node::<D>::single_page_capacity(false);
        let mut levels = 1usize;
        while D * (levels + 1) < usize::BITS as usize - 1 && (1usize << (D * (levels + 1))) <= cap {
            levels += 1;
        }
        levels
    }
}

/// A disk-resident MBR-enhanced PR bucket quadtree.
pub struct Mbrqt<const D: usize> {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) meta_page: PageId,
    pub(crate) journal: Journal,
    pub(crate) root: PageId,
    /// The fixed universe this tree decomposes.
    pub(crate) universe: Mbr<D>,
    /// Tight bounds over the indexed points.
    pub(crate) bounds: Mbr<D>,
    pub(crate) num_points: u64,
    pub(crate) bucket_capacity: usize,
    pub(crate) levels_per_node: usize,
    pub(crate) max_depth: usize,
    pub(crate) use_subtree_mbrs: bool,
    /// Decoded-node cache for query traversals. Epoch-keyed (bumped on
    /// every structural mutation) until versioning is enabled; keyed by
    /// snapshot version afterwards (shared with [`VersionedHandle`]s).
    pub(crate) cache: Arc<NodeCache<D>>,
    /// MVCC mode: when set, every mutation commits a new immutable
    /// snapshot version instead of updating pages in place.
    pub(crate) versions: Option<Arc<VersionedStore>>,
}

impl<const D: usize> Mbrqt<D> {
    /// Creates an empty tree over the given fixed `universe`.
    ///
    /// Points inserted later must lie inside the universe; PR quadtrees
    /// decompose a fixed space, so the universe cannot grow afterwards.
    pub fn create(pool: Arc<BufferPool>, universe: Mbr<D>, config: &MbrqtConfig) -> Result<Self> {
        if universe.is_empty() {
            return Err(StoreError::corrupt("quadtree universe must be non-empty"));
        }
        let meta_page = pool.allocate()?;
        let journal = crate::create_journal_after_meta(&pool, meta_page)?;
        let txn = Txn::begin(&pool, journal);
        let root = txn.allocate()?;
        ann_core::node::write_node::<D>(&txn, root, &Node::empty_leaf())?;
        let tree = Mbrqt {
            pool: Arc::clone(&pool),
            meta_page,
            journal,
            root,
            universe,
            bounds: Mbr::empty(),
            num_points: 0,
            bucket_capacity: config.resolved_bucket_capacity::<D>(),
            levels_per_node: config.resolved_levels_per_node::<D>(),
            max_depth: config.max_depth,
            use_subtree_mbrs: config.use_subtree_mbrs,
            cache: Arc::new(NodeCache::default()),
            versions: None,
        };
        tree.save_meta_to(&txn)?;
        txn.commit()?;
        Ok(tree)
    }

    /// Builds a tree over `points` in one top-down pass. The universe is
    /// the tight bounding box of the input.
    pub fn bulk_build(
        pool: Arc<BufferPool>,
        points: &[(u64, Point<D>)],
        config: &MbrqtConfig,
    ) -> Result<Self> {
        build::bulk_build(pool, points, config, Side::R, Tracer::disabled())
    }

    /// [`bulk_build`](Self::bulk_build) with an attached
    /// [`Tracer`]: wraps construction in a `Build` span (pool I/O deltas
    /// included) and emits one [`ann_core::trace::TraceEvent::IndexLevelBuilt`] per disk
    /// level, tagged with `side` so a joined pair of builds stays
    /// distinguishable in the report. With `Tracer::disabled()` this is
    /// exactly [`bulk_build`](Self::bulk_build).
    pub fn bulk_build_traced(
        pool: Arc<BufferPool>,
        points: &[(u64, Point<D>)],
        config: &MbrqtConfig,
        side: Side,
        tracer: Tracer<'_>,
    ) -> Result<Self> {
        build::bulk_build(pool, points, config, side, tracer)
    }

    /// Builds a tree from a point *stream*, keeping memory bounded by
    /// `memory_budget` records: the stream spills to `scratch` (fixing
    /// the universe from the computed bounds) and oversized partitions
    /// split externally, cell by cell, until they fit the budget — from
    /// there down construction delegates to the same in-memory builder as
    /// [`bulk_build`](Self::bulk_build), so the resulting tree structure
    /// is identical to what `bulk_build` would produce for the same
    /// input.
    ///
    /// `scratch` holds only temporary spill pages — give it its own pool
    /// so spill traffic cannot evict the tree's pages from `pool`.
    pub fn bulk_build_stream(
        pool: Arc<BufferPool>,
        scratch: Arc<BufferPool>,
        points: impl IntoIterator<Item = (u64, Point<D>)>,
        memory_budget: usize,
        config: &MbrqtConfig,
    ) -> Result<Self> {
        build::bulk_build_stream(
            pool,
            scratch,
            points,
            memory_budget,
            config,
            Side::R,
            Tracer::disabled(),
        )
    }

    /// [`bulk_build_stream`](Self::bulk_build_stream) with an attached
    /// [`Tracer`] (build span + per-level node tallies).
    pub fn bulk_build_stream_traced(
        pool: Arc<BufferPool>,
        scratch: Arc<BufferPool>,
        points: impl IntoIterator<Item = (u64, Point<D>)>,
        memory_budget: usize,
        config: &MbrqtConfig,
        side: Side,
        tracer: Tracer<'_>,
    ) -> Result<Self> {
        build::bulk_build_stream(pool, scratch, points, memory_budget, config, side, tracer)
    }

    /// Opens a previously built tree from its metadata page.
    ///
    /// Opening runs crash recovery first — a committed-but-unapplied
    /// journal batch is replayed, a partial one is discarded — and then
    /// verifies every structural invariant with
    /// [`ann_core::index::validate`], so an `Ok` tree is never silently
    /// partial: after any mid-update crash this either restores a
    /// consistent tree or reports [`StoreError::Corrupt`].
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<Self> {
        let (journal, _recovery) = Journal::open(&pool, meta_page + 1)?;
        let tree = meta::load(pool, meta_page, journal)?;
        ann_core::index::validate(&tree)?;
        Ok(tree)
    }

    /// The metadata page identifying this tree on disk.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// The fixed universe the tree decomposes.
    pub fn universe(&self) -> Mbr<D> {
        self.universe
    }

    /// Leaf bucket capacity in use.
    pub fn bucket_capacity(&self) -> usize {
        self.bucket_capacity
    }

    /// Decomposition levels packed per disk node (node fanout is up to
    /// `2^(D * levels_per_node)`).
    pub fn levels_per_node(&self) -> usize {
        self.levels_per_node
    }

    /// Whether entries carry tight subtree MBRs (`true` for real MBRQT).
    pub fn uses_subtree_mbrs(&self) -> bool {
        self.use_subtree_mbrs
    }

    /// Inserts one point. Fails if the point is non-finite or outside the
    /// universe.
    pub fn insert(&mut self, oid: u64, point: Point<D>) -> Result<()> {
        insert::insert(self, oid, point)?;
        self.note_mutation();
        Ok(())
    }

    /// Deletes the object `(oid, point)` (both must match an indexed
    /// object exactly). Internal nodes whose subtrees shrink to bucket
    /// size collapse back into single leaf buckets. Returns whether the
    /// object existed.
    pub fn delete(&mut self, oid: u64, point: &Point<D>) -> Result<bool> {
        let existed = delete::delete(self, oid, point)?;
        if existed {
            self.note_mutation();
        }
        Ok(existed)
    }

    /// Switches the tree into MVCC snapshot mode: from here on every
    /// insert/delete commits an immutable new version (copy-on-write
    /// pages) instead of updating pages in place, and concurrent readers
    /// pin versions through [`versioned_handle`](Self::versioned_handle)
    /// without ever blocking on the writer.
    ///
    /// `keep` bounds the history window (see [`ann_store::DEFAULT_KEEP`]).
    /// Returns the manifest head page the caller must persist to reopen
    /// the tree with [`open_versioned`](Self::open_versioned) — after the
    /// first versioned commit the meta page is copy-on-write and its
    /// original physical page goes stale, so the manifest (not the meta
    /// page alone) is the durable root of a versioned tree.
    pub fn enable_versioning(&mut self, keep: u32) -> Result<PageId> {
        if self.versions.is_some() {
            return Err(StoreError::corrupt("versioning is already enabled"));
        }
        let store = VersionedStore::create(Arc::clone(&self.pool), self.journal, keep)?;
        let head = store.manifest_head();
        // Fresh cache: version numbers live in their own key space, which
        // must not collide with the retired epoch counter's.
        self.cache = Arc::new(NodeCache::default());
        self.versions = Some(store);
        Ok(head)
    }

    /// Opens a versioned tree from its meta page and the manifest head
    /// returned by [`enable_versioning`](Self::enable_versioning). Runs
    /// journal crash recovery, loads the version manifest, and reads the
    /// meta fields *through* the latest snapshot (the on-disk meta page
    /// itself is stale once copy-on-write commits exist).
    pub fn open_versioned(
        pool: Arc<BufferPool>,
        meta_page: PageId,
        manifest_head: PageId,
    ) -> Result<Self> {
        let (journal, _recovery) = Journal::open(&pool, meta_page + 1)?;
        let store = VersionedStore::open(Arc::clone(&pool), journal, manifest_head)?;
        let snap = store.pin(None)?;
        let mut tree = meta::load_via(&snap, Arc::clone(&pool), meta_page, journal)?;
        drop(snap);
        tree.versions = Some(store);
        ann_core::index::validate(&tree)?;
        Ok(tree)
    }

    /// The tree's versioned store, when versioning is enabled.
    pub fn versioned_store(&self) -> Option<&Arc<VersionedStore>> {
        self.versions.as_ref()
    }

    /// A cloneable, thread-safe factory of pinned read views ([`None`]
    /// until [`enable_versioning`](Self::enable_versioning)). The handle
    /// shares this tree's node cache, so snapshot readers and the writer
    /// populate one cache keyed by `(version, page)`.
    pub fn versioned_handle(&self) -> Option<VersionedHandle<D>> {
        let store = self.versions.as_ref()?;
        Some(VersionedHandle::new(
            Arc::clone(store),
            Arc::clone(&self.cache),
            self.meta_page,
            meta::snapshot_meta_fields::<D>,
        ))
    }

    /// Writes all dirty pages through to the backing disk.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Post-mutation cache upkeep. Non-versioned trees invalidate the
    /// whole cache (epoch bump); versioned trees keep old-version entries
    /// live for pinned readers and only purge keys below the GC floor.
    fn note_mutation(&self) {
        match &self.versions {
            Some(store) => self.cache.retire_below(u64::from(store.version_floor())),
            None => self.cache.bump_epoch(),
        }
        debug_assert_eq!(
            self.cache.stale_len(),
            0,
            "node cache holds stale entries after a mutation"
        );
    }

    pub(crate) fn save_meta_to(&self, store: &impl PageStore) -> Result<()> {
        meta::save_to(self, store)
    }
}

impl<const D: usize> SpatialIndex<D> for Mbrqt<D> {
    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn root_page(&self) -> PageId {
        self.root
    }

    fn num_points(&self) -> u64 {
        self.num_points
    }

    fn bounds(&self) -> Mbr<D> {
        self.bounds
    }

    fn read_node(&self, page: PageId) -> Result<Node<D>> {
        match &self.versions {
            // A versioned tree's logical pages are remapped by COW
            // commits; direct tree reads go through the latest snapshot.
            Some(store) => ann_core::node::read_node(&store.pin(None)?, page),
            None => ann_core::node::read_node(self.pool.as_ref(), page),
        }
    }

    fn node_cache(&self) -> Option<&NodeCache<D>> {
        Some(self.cache.as_ref())
    }

    fn cache_key(&self) -> u64 {
        match &self.versions {
            // Share entries with ReadContexts pinned at the same version.
            Some(store) => u64::from(store.latest()),
            None => self.cache.epoch(),
        }
    }
}

/// Creates the tree's journal right after its freshly allocated meta page,
/// enforcing the `meta_page + 1` adjacency convention that lets
/// [`Mbrqt::open`] find the journal without persisting its id anywhere.
/// Interleaved allocations from another thread would break the convention,
/// so that is reported as an error rather than silently accepted.
pub(crate) fn create_journal_after_meta(pool: &BufferPool, meta_page: PageId) -> Result<Journal> {
    let journal = Journal::create(pool)?;
    if journal.header_page() != meta_page + 1 {
        return Err(StoreError::corrupt(
            "journal header page must immediately follow the meta page",
        ));
    }
    Ok(journal)
}

/// The orthant (child index in `0..2^D`) of `point` within a quadrant
/// centered at `center`: bit `d` is set when `point[d] >= center[d]`.
#[inline]
pub(crate) fn orthant_of<const D: usize>(point: &Point<D>, center: &Point<D>) -> usize {
    let mut idx = 0;
    for d in 0..D {
        if point[d] >= center[d] {
            idx |= 1 << d;
        }
    }
    idx
}

/// The grid cell (in `0..2^(D*levels)`) of `point` after `levels` rounds
/// of regular halving of `quadrant`. Level 0 provides the most significant
/// `D` bits of the index.
#[inline]
pub(crate) fn cell_of_point<const D: usize>(
    quadrant: &Mbr<D>,
    point: &Point<D>,
    levels: usize,
) -> usize {
    let mut q = *quadrant;
    let mut idx = 0usize;
    for _ in 0..levels {
        let center = q.center();
        let o = orthant_of(point, &center);
        idx = (idx << D) | o;
        q = child_quadrant(&q, o);
    }
    idx
}

/// The quadrant box of grid cell `cell` (as produced by [`cell_of_point`])
/// within `quadrant`.
#[inline]
pub(crate) fn cell_quadrant<const D: usize>(
    quadrant: &Mbr<D>,
    cell: usize,
    levels: usize,
) -> Mbr<D> {
    let mut q = *quadrant;
    let mask = (1usize << D) - 1;
    for level in (0..levels).rev() {
        let o = (cell >> (level * D)) & mask;
        q = child_quadrant(&q, o);
    }
    q
}

/// Recovers the grid cell of a child entry from its stored MBR's lower
/// corner (see [`orthant_of_mbr`] for why the lower corner classifies
/// correctly at every level).
#[inline]
pub(crate) fn cell_of_mbr<const D: usize>(quadrant: &Mbr<D>, mbr: &Mbr<D>, levels: usize) -> usize {
    cell_of_point(quadrant, &Point::new(mbr.lo), levels)
}

/// The quadrant box of orthant `idx` within `quadrant`.
#[inline]
pub(crate) fn child_quadrant<const D: usize>(quadrant: &Mbr<D>, idx: usize) -> Mbr<D> {
    let center = quadrant.center();
    let mut lo = quadrant.lo;
    let mut hi = quadrant.hi;
    for d in 0..D {
        if idx & (1 << d) != 0 {
            lo[d] = center[d];
        } else {
            hi[d] = center[d];
        }
    }
    Mbr::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthant_round_trips_through_child_quadrant() {
        let q = Mbr::new([0.0, 0.0, 0.0], [8.0, 8.0, 8.0]);
        let center = q.center();
        for idx in 0..8usize {
            let child = child_quadrant(&q, idx);
            // Any interior point of the child maps back to idx.
            let probe = child.center();
            assert_eq!(orthant_of(&probe, &center), idx);
            assert_eq!(cell_of_mbr(&q, &child, 1), idx);
        }
    }

    #[test]
    fn center_plane_points_go_to_upper_orthant() {
        let q = Mbr::new([0.0, 0.0], [4.0, 4.0]);
        let center = q.center();
        assert_eq!(orthant_of(&Point::new([2.0, 2.0]), &center), 0b11);
        assert_eq!(orthant_of(&Point::new([2.0, 1.0]), &center), 0b01);
        assert_eq!(orthant_of(&Point::new([1.0, 2.0]), &center), 0b10);
    }

    #[test]
    fn child_quadrants_partition_parent() {
        let q = Mbr::new([-2.0, 3.0], [6.0, 11.0]);
        let mut vol = 0.0;
        for idx in 0..4 {
            let c = child_quadrant(&q, idx);
            assert!(q.contains(&c));
            vol += c.volume();
        }
        assert!((vol - q.volume()).abs() < 1e-9);
    }

    fn versioned_tree() -> Mbrqt<2> {
        let pool = Arc::new(BufferPool::new(ann_store::MemDisk::new(), 256));
        let universe = Mbr::new([0.0, 0.0], [100.0, 100.0]);
        let mut tree = Mbrqt::<2>::create(pool, universe, &MbrqtConfig::default()).unwrap();
        tree.insert(0, Point::new([1.0, 1.0])).unwrap();
        tree.enable_versioning(8).unwrap();
        tree
    }

    #[test]
    fn versioned_mutations_preserve_pinned_snapshots() {
        let mut tree = versioned_tree();
        let handle = tree.versioned_handle().unwrap();
        let old = handle.pin(None).unwrap();
        assert_eq!(SpatialIndex::num_points(&old), 1);

        tree.insert(1, Point::new([2.0, 2.0])).unwrap();
        tree.insert(2, Point::new([60.0, 60.0])).unwrap();
        assert!(tree.delete(0, &Point::new([1.0, 1.0])).unwrap());

        // The writer sees the newest state; the pinned reader still sees
        // exactly the point set from before the mutations.
        assert_eq!(SpatialIndex::num_points(&tree), 2);
        let old_objs = ann_core::index::collect_objects(&old).unwrap();
        assert_eq!(old_objs, vec![(0, Point::new([1.0, 1.0]))]);
        ann_core::index::validate(&old).unwrap();
        ann_core::index::validate(&tree).unwrap();

        // A fresh pin sees the newest version, and both views coexist.
        let new = handle.pin(None).unwrap();
        assert_eq!(ann_core::index::collect_objects(&new).unwrap().len(), 2);
        assert!(new.version() > old.version());
        assert_eq!(handle.store().pinned_readers(), 2);
        drop((old, new));
        assert_eq!(handle.store().pinned_readers(), 0);
    }

    #[test]
    fn versioned_tree_reopens_from_manifest() {
        let pool = Arc::new(BufferPool::new(ann_store::MemDisk::new(), 256));
        let universe = Mbr::new([0.0, 0.0], [100.0, 100.0]);
        let mut tree = Mbrqt::<2>::create(Arc::clone(&pool), universe, &MbrqtConfig::default())
            .unwrap();
        let meta_page = tree.meta_page();
        let head = tree.enable_versioning(4).unwrap();
        for i in 0..40u64 {
            tree.insert(i, Point::new([(i % 10) as f64, (i / 10) as f64]))
                .unwrap();
        }
        tree.flush().unwrap();
        drop(tree);

        let tree = Mbrqt::<2>::open_versioned(pool, meta_page, head).unwrap();
        assert_eq!(SpatialIndex::num_points(&tree), 40);
        let handle = tree.versioned_handle().unwrap();
        let ctx = handle.pin(None).unwrap();
        assert_eq!(ann_core::index::collect_objects(&ctx).unwrap().len(), 40);
    }
}
