//! Out-of-core (streamed) MBRQT build: the external distribution
//! partitioning must produce the *identical* tree the in-memory builder
//! does — same partitioning decisions, same page allocation order.

use ann_core::index::{collect_objects, validate, SpatialIndex};
use ann_geom::Point;
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_store::{BufferPool, MemDisk};
use std::sync::Arc;

fn pool(pages: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), pages))
}

fn points(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 40) as f64 / (1u64 << 24) as f64
    };
    (0..n as u64).map(|i| (i, Point::new([next(), next()]))).collect()
}

#[test]
fn streamed_build_is_identical_to_in_memory_build() {
    let pts = points(4000, 0xBEEF);
    let cfg = MbrqtConfig::default();
    let streamed = Mbrqt::bulk_build_stream(
        pool(64),
        pool(32),
        pts.iter().copied(),
        // Budget far below the input: the root and at least one more
        // level partition externally before materializing.
        250,
        &cfg,
    )
    .unwrap();
    let in_memory = Mbrqt::bulk_build(pool(64), &pts, &cfg).unwrap();

    // Identical structure: same shape, same root page (page allocation
    // order on the main pool is deterministic and shared), same census.
    assert_eq!(
        validate(&streamed).unwrap(),
        validate(&in_memory).unwrap(),
        "tree shapes must match exactly"
    );
    assert_eq!(streamed.root_page(), in_memory.root_page());
    assert_eq!(streamed.bounds(), in_memory.bounds());
    let mut a = collect_objects(&streamed).unwrap();
    let mut b = collect_objects(&in_memory).unwrap();
    a.sort_by_key(|(oid, _)| *oid);
    b.sort_by_key(|(oid, _)| *oid);
    assert_eq!(a, b);
}

#[test]
fn streamed_build_validates_at_10x_memory_budget() {
    let pts = points(6000, 3);
    let tree = Mbrqt::bulk_build_stream(
        pool(64),
        pool(32),
        pts.iter().copied(),
        600, // dataset is 10× the materialization budget
        &MbrqtConfig::default(),
    )
    .unwrap();
    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 6000);
    let mut census = collect_objects(&tree).unwrap();
    census.sort_by_key(|(oid, _)| *oid);
    assert_eq!(census, pts);
}

#[test]
fn streamed_build_handles_empty_and_duplicate_inputs() {
    let empty = Mbrqt::<2>::bulk_build_stream(
        pool(16),
        pool(16),
        std::iter::empty(),
        10,
        &MbrqtConfig::default(),
    )
    .unwrap();
    assert_eq!(validate(&empty).unwrap().objects, 0);

    // Duplicates never make partitioning progress; the max_depth budget
    // must stop the external recursion exactly as it stops the in-memory
    // one.
    let dupes: Vec<(u64, Point<2>)> =
        (0..300).map(|i| (i, Point::new([0.5, 0.5]))).collect();
    let cfg = MbrqtConfig::default();
    let streamed =
        Mbrqt::bulk_build_stream(pool(64), pool(16), dupes.iter().copied(), 50, &cfg).unwrap();
    let in_memory = Mbrqt::bulk_build(pool(64), &dupes, &cfg).unwrap();
    assert_eq!(
        validate(&streamed).unwrap(),
        validate(&in_memory).unwrap()
    );

    let bad = Mbrqt::<2>::bulk_build_stream(
        pool(16),
        pool(16),
        vec![(0u64, Point::new([0.0, f64::INFINITY]))],
        10,
        &MbrqtConfig::default(),
    );
    assert!(bad.is_err());
}
