//! Structural tests for the MBRQT: bulk build, incremental insertion,
//! persistence, and the quadtree-specific invariants (regular
//! decomposition, non-overlap, tight MBRs).

use ann_core::index::{collect_objects, validate, SpatialIndex};
use ann_core::node::Entry;
use ann_geom::{Mbr, Point};
use ann_mbrqt::{Mbrqt, MbrqtConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), frames))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(-1000.0..1000.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

#[test]
fn bulk_build_validates_and_contains_all_points() {
    let pts = random_points::<2>(5000, 7);
    let tree = Mbrqt::bulk_build(pool(64), &pts, &MbrqtConfig::default()).unwrap();
    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 5000);
    assert!(shape.height >= 2, "5000 points cannot fit one bucket");

    let mut got = collect_objects(&tree).unwrap();
    got.sort_by_key(|(oid, _)| *oid);
    let mut want = pts.clone();
    want.sort_by_key(|(oid, _)| *oid);
    assert_eq!(got.len(), want.len());
    for ((go, gp), (wo, wp)) in got.iter().zip(&want) {
        assert_eq!(go, wo);
        assert_eq!(gp.coords(), wp.coords());
    }
}

#[test]
fn incremental_insert_matches_bulk_validate() {
    let pts = random_points::<2>(2000, 11);
    let universe = Mbr::from_points(pts.iter().map(|(_, p)| p));
    let mut tree = Mbrqt::create(pool(64), universe, &MbrqtConfig::default()).unwrap();
    for &(oid, p) in &pts {
        tree.insert(oid, p).unwrap();
    }
    assert_eq!(tree.num_points(), 2000);
    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 2000);
    let got: HashSet<u64> = collect_objects(&tree)
        .unwrap()
        .iter()
        .map(|(o, _)| *o)
        .collect();
    assert_eq!(got.len(), 2000);
}

#[test]
fn sibling_subtrees_never_overlap() {
    // Regular decomposition: the *quadrants* of siblings are disjoint, so
    // tight sibling MBRs can only touch, never properly overlap.
    let pts = random_points::<2>(3000, 13);
    let tree = Mbrqt::bulk_build(pool(64), &pts, &MbrqtConfig::default()).unwrap();
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page).unwrap();
        if node.is_leaf {
            continue;
        }
        for (i, a) in node.entries.iter().enumerate() {
            for b in &node.entries[i + 1..] {
                let overlap = a.mbr().intersection_volume(&b.mbr());
                assert_eq!(
                    overlap,
                    0.0,
                    "siblings overlap: {:?} vs {:?}",
                    a.mbr(),
                    b.mbr()
                );
            }
        }
        for e in &node.entries {
            if let Entry::Node(n) = e {
                stack.push(n.page);
            }
        }
    }
}

#[test]
fn bucket_capacity_is_respected_above_max_depth() {
    let pts = random_points::<2>(4000, 17);
    let cfg = MbrqtConfig {
        bucket_capacity: 32,
        ..Default::default()
    };
    let tree = Mbrqt::bulk_build(pool(64), &pts, &cfg).unwrap();
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page).unwrap();
        if node.is_leaf {
            assert!(node.entries.len() <= 32);
        }
        for e in &node.entries {
            if let Entry::Node(n) = e {
                stack.push(n.page);
            }
        }
    }
}

#[test]
fn duplicate_points_overflow_into_one_bucket() {
    // 500 copies of the same point with capacity 8: splitting can never
    // separate them, so max_depth must stop the recursion.
    let pts: Vec<(u64, Point<2>)> = (0..500).map(|i| (i, Point::new([5.0, 5.0]))).collect();
    let cfg = MbrqtConfig {
        bucket_capacity: 8,
        max_depth: 12,
        ..Default::default()
    };
    let tree = Mbrqt::bulk_build(pool(64), &pts, &cfg).unwrap();
    assert_eq!(validate(&tree).unwrap().objects, 500);
}

#[test]
fn open_round_trips_through_meta_page() {
    let pts = random_points::<3>(1000, 19);
    let pool = pool(64);
    let tree = Mbrqt::bulk_build(pool.clone(), &pts, &MbrqtConfig::default()).unwrap();
    let meta = tree.meta_page();
    let bounds = tree.bounds();
    drop(tree);
    let reopened: Mbrqt<3> = Mbrqt::open(pool, meta).unwrap();
    assert_eq!(reopened.num_points(), 1000);
    assert_eq!(reopened.bounds(), bounds);
    assert_eq!(validate(&reopened).unwrap().objects, 1000);
}

#[test]
fn works_under_tiny_buffer_pool() {
    // 4-frame pool: every traversal thrashes, but correctness must hold.
    let pts = random_points::<2>(3000, 23);
    let pool = pool(4);
    let tree = Mbrqt::bulk_build(pool.clone(), &pts, &MbrqtConfig::default()).unwrap();
    assert_eq!(validate(&tree).unwrap().objects, 3000);
    assert!(pool.stats().physical_reads > 0);
}

#[test]
fn ten_dimensional_build() {
    let pts = random_points::<10>(2000, 29);
    let tree = Mbrqt::bulk_build(pool(256), &pts, &MbrqtConfig::default()).unwrap();
    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 2000);
}

#[test]
fn plain_quadrant_ablation_builds() {
    let pts = random_points::<2>(2000, 31);
    let cfg = MbrqtConfig {
        use_subtree_mbrs: false,
        ..Default::default()
    };
    let tree = Mbrqt::bulk_build(pool(64), &pts, &cfg).unwrap();
    assert!(!tree.uses_subtree_mbrs());
    // Tight-MBR validation is expected to fail (entries are quadrant
    // boxes), but all points must still be reachable.
    assert_eq!(collect_objects(&tree).unwrap().len(), 2000);
    // Entries must still *contain* their subtree (upper-bound soundness
    // for MAXMAXDIST).
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page).unwrap();
        for e in &node.entries {
            if let Entry::Node(n) = e {
                let child = tree.read_node(n.page).unwrap();
                let child_tight = Mbr::from_points(collect_node_points(&tree, n.page).iter());
                assert!(
                    n.mbr.contains(&child_tight) || child.entries.is_empty(),
                    "entry box must contain its subtree"
                );
                stack.push(n.page);
            }
        }
    }
}

fn collect_node_points<const D: usize>(tree: &Mbrqt<D>, page: ann_store::PageId) -> Vec<Point<D>> {
    let mut out = vec![];
    let mut stack = vec![page];
    while let Some(p) = stack.pop() {
        let node = tree.read_node(p).unwrap();
        for e in &node.entries {
            match e {
                Entry::Object(o) => out.push(o.point),
                Entry::Node(n) => stack.push(n.page),
            }
        }
    }
    out
}

#[test]
fn rejects_bad_input() {
    let universe = Mbr::new([0.0, 0.0], [1.0, 1.0]);
    let mut tree = Mbrqt::create(pool(16), universe, &MbrqtConfig::default()).unwrap();
    assert!(
        tree.insert(0, Point::new([2.0, 0.5])).is_err(),
        "outside universe"
    );
    assert!(tree.insert(0, Point::new([f64::NAN, 0.5])).is_err(), "NaN");
    assert_eq!(tree.num_points(), 0);
}

#[test]
fn empty_and_single_point_trees() {
    let empty = Mbrqt::<2>::bulk_build(pool(16), &[], &MbrqtConfig::default()).unwrap();
    assert_eq!(empty.num_points(), 0);
    assert!(empty.bounds().is_empty());
    assert_eq!(validate(&empty).unwrap().objects, 0);

    let one = Mbrqt::bulk_build(
        pool(16),
        &[(42, Point::new([3.0, 4.0]))],
        &MbrqtConfig::default(),
    )
    .unwrap();
    assert_eq!(one.num_points(), 1);
    assert_eq!(
        collect_objects(&one).unwrap(),
        vec![(42, Point::new([3.0, 4.0]))]
    );
}

#[test]
fn node_cache_serves_repeat_traversals_and_invalidates_on_mutation() {
    let pts = random_points::<2>(2000, 21);
    let mut tree = Mbrqt::bulk_build(pool(64), &pts, &MbrqtConfig::default()).unwrap();
    let cache = tree.node_cache().expect("MBRQT keeps a node cache");

    // First cached traversal fills the cache; second is mostly hits.
    let root1 = tree.read_node_cached(tree.root_page()).unwrap();
    cache.reset_stats();
    let root2 = tree.read_node_cached(tree.root_page()).unwrap();
    assert_eq!(cache.stats().hits, 1, "repeat read of the root is a hit");
    assert_eq!(*root1, *root2);
    let epoch_before = cache.epoch();

    // Insert: the epoch bumps and the post-insert traversal must see the
    // new point — stale cached nodes would hide it.
    let extra = Point::new([12.5, -3.25]);
    tree.insert(999_999, extra).unwrap();
    let cache = tree.node_cache().unwrap();
    assert_ne!(cache.epoch(), epoch_before, "insert bumps the epoch");

    let mut stack = vec![tree.root_page()];
    let mut found = false;
    while let Some(page) = stack.pop() {
        let node = tree.read_node_cached(page).unwrap();
        for e in node.entries.iter() {
            match e {
                Entry::Object(o) if o.oid == 999_999 => found = true,
                Entry::Node(n) => stack.push(n.page),
                _ => {}
            }
        }
    }
    assert!(found, "cached traversal observes the inserted point");

    // Delete: epoch bumps again; the cached traversal must stop seeing it.
    let epoch_before = cache.epoch();
    assert!(tree.delete(999_999, &extra).unwrap());
    let cache = tree.node_cache().unwrap();
    assert_ne!(cache.epoch(), epoch_before, "delete bumps the epoch");
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node_cached(page).unwrap();
        for e in node.entries.iter() {
            match e {
                Entry::Object(o) => assert_ne!(o.oid, 999_999, "stale cache"),
                Entry::Node(n) => stack.push(n.page),
            }
        }
    }

    // A failed delete (nothing removed) must NOT invalidate the cache.
    let epoch_before = cache.epoch();
    assert!(!tree.delete(123_456_789, &extra).unwrap());
    assert_eq!(
        tree.node_cache().unwrap().epoch(),
        epoch_before,
        "no-op delete keeps the cache"
    );
}

#[test]
fn decoded_soa_columns_round_trip_every_node() {
    // Every node of a multi-level tree: the decode-time SoA mirror must
    // gather back to exactly the entry list — bit-for-bit coordinates —
    // because the batched kernels read the columns while decisions and
    // results are still expressed against the entries.
    let pts = random_points::<3>(3000, 33);
    let tree = Mbrqt::bulk_build(pool(64), &pts, &MbrqtConfig::default()).unwrap();
    let mut stack = vec![tree.root_page()];
    let mut leaves = 0;
    let mut internals = 0;
    while let Some(page) = stack.pop() {
        let node = tree.read_node_cached(page).unwrap();
        let mbrs = node.soa_mbrs();
        assert_eq!(mbrs.len, node.entries.len());
        for (i, e) in node.entries.iter().enumerate() {
            let got = mbrs.mbr::<3>(i);
            let want = e.mbr();
            assert_eq!(got.lo.map(f64::to_bits), want.lo.map(f64::to_bits));
            assert_eq!(got.hi.map(f64::to_bits), want.hi.map(f64::to_bits));
        }
        if node.is_leaf {
            leaves += 1;
            let points = node.leaf_points().expect("leaf has point columns");
            for (i, e) in node.entries.iter().enumerate() {
                let Entry::Object(o) = e else {
                    panic!("leaf holds a child")
                };
                assert_eq!(
                    points.point::<3>(i).coords().map(f64::to_bits),
                    o.point.coords().map(f64::to_bits)
                );
            }
        } else {
            internals += 1;
            assert!(node.leaf_points().is_none());
            for e in node.entries.iter() {
                let Entry::Node(n) = e else {
                    panic!("internal holds an object")
                };
                stack.push(n.page);
            }
        }
    }
    assert!(leaves > 1 && internals >= 1, "tree too small to be probative");
}
