//! Multi-version concurrency control over the page substrate.
//!
//! The journal/txn layer gives one writer all-or-nothing batches, but a
//! committed batch overwrites home pages in place: a reader traversing
//! the tree while a commit lands can see a mix of old and new pages.
//! [`VersionedStore`] closes that gap with copy-on-write versioning:
//!
//! * every committed transaction produces a new immutable **version**,
//!   identified by a monotonic `u32`;
//! * a version is a logical→physical page table: pages untouched since
//!   the previous version map to themselves (identity), mutated pages
//!   map to freshly written physical copies, so older versions keep
//!   reading the untouched originals;
//! * readers [`VersionedStore::pin`] a version and get a [`Snapshot`] —
//!   a read-only [`PageStore`] that translates page ids through the
//!   pinned table. Pinning takes one short mutex acquisition; no lock is
//!   held while a commit writes pages, so readers are never blocked by
//!   the writer;
//! * a **manifest** (the full version table set, free list and pending
//!   retirements) is serialized into a page chain and journal-committed
//!   atomically *with* the copy-on-write pages, so a crash lands on a
//!   complete version or the previous one — never in between;
//! * bounded-history GC retains the `keep` most recent versions plus
//!   any older version still pinned by a reader. Physical pages retired
//!   at version `r` are reclaimed to a free list once every retained
//!   version is newer than `r`; a pinned version holds the floor down,
//!   so GC can never reclaim a page a live snapshot might read.
//!
//! Logical page ids are never recycled (the pool allocator is
//! append-only), and once a logical page has been copied-on-write its
//! table entry is carried forward in every later version. Both facts
//! together make free-list reuse safe: a reclaimed physical page can
//! only be reached through a version table that no live snapshot uses.
//!
//! In-memory GC is lazy: collection runs at the start of each commit
//! (and on [`VersionedStore::gc`]), and the durable manifest catches up
//! at the next commit. Recovery recomputes the same collection from the
//! manifest with zero pins, so the lag is invisible after a crash.

use crate::journal::Journal;
use crate::pool::PageStore;
use crate::{BufferPool, PageId, Result, StoreError, INVALID_PAGE, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Magic tag on every manifest chain page.
const VMAN_MAGIC: u32 = 0x5653_4E31; // "VSN1"
/// Magic prefix of the manifest payload itself.
const VMAN_HEADER: &[u8; 8] = b"VMANIF01";
/// Payload bytes per manifest chain page after the next-pointer + magic.
const CHAIN_CAPACITY: usize = PAGE_SIZE - 8;

/// Default number of recent versions retained for time-travel reads.
pub const DEFAULT_KEEP: u32 = 8;

/// One immutable version: its id and logical→physical translation.
///
/// Pages absent from `table` are identity-mapped (logical id == physical
/// id). Entries are only ever added, never removed: once a logical page
/// has been copied-on-write it stays explicitly mapped in every later
/// version, which is what makes retired physical pages safe to reuse.
#[derive(Debug)]
pub struct VersionInfo {
    version: u32,
    table: BTreeMap<PageId, PageId>,
}

impl VersionInfo {
    /// The version number.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Physical page backing `logical` in this version.
    pub fn translate(&self, logical: PageId) -> PageId {
        self.table.get(&logical).copied().unwrap_or(logical)
    }

    /// Number of explicit (non-identity) table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }
}

struct VersionSlot {
    info: Arc<VersionInfo>,
    pins: u32,
}

struct VersionedState {
    latest: u32,
    versions: BTreeMap<u32, VersionSlot>,
    /// Reclaimed physical pages available as copy-on-write targets.
    free: Vec<PageId>,
    /// Physical pages retired at a version: a page retired at `r` served
    /// versions `<= r` and is reclaimable once every retained version is
    /// newer than `r`.
    pending: Vec<(u32, Vec<PageId>)>,
    /// Pages of the manifest chain (head first), reused across commits.
    manifest_pages: Vec<PageId>,
    keep: u32,
}

/// An append-only versioned page store layered on the journal.
///
/// See the module docs for the protocol. Constructed with
/// [`VersionedStore::create`] (new store, version 1 = identity) or
/// [`VersionedStore::open`] (recover from a durable manifest).
pub struct VersionedStore {
    pool: Arc<BufferPool>,
    journal: Journal,
    manifest_head: PageId,
    state: Mutex<VersionedState>,
    /// Serializes commits; never held while readers pin or read.
    writer: Mutex<()>,
}

impl VersionedStore {
    /// Creates a fresh versioned store over `pool`, writing an initial
    /// manifest for version 1 (identity table: the pool's current
    /// contents). `keep` bounds retained history (clamped to >= 1).
    ///
    /// The returned store's [`manifest_head`](Self::manifest_head) must
    /// be persisted by the caller to reopen later.
    pub fn create(pool: Arc<BufferPool>, journal: Journal, keep: u32) -> Result<Arc<VersionedStore>> {
        let manifest_head = pool.allocate()?;
        let mut versions = BTreeMap::new();
        versions.insert(
            1,
            VersionSlot {
                info: Arc::new(VersionInfo {
                    version: 1,
                    table: BTreeMap::new(),
                }),
                pins: 0,
            },
        );
        let store = VersionedStore {
            pool,
            journal,
            manifest_head,
            state: Mutex::new(VersionedState {
                latest: 1,
                versions,
                free: Vec::new(),
                pending: Vec::new(),
                manifest_pages: vec![manifest_head],
                keep: keep.max(1),
            }),
            writer: Mutex::new(()),
        };
        // The initial manifest is written directly (no journal): nothing
        // references the head page until the caller persists it.
        let st = store.state.lock();
        let images = store.manifest_images(&st, &st.manifest_pages)?;
        drop(st);
        for (page, image) in &images {
            store.pool.overwrite_page(*page, image)?;
        }
        let pages: Vec<PageId> = images.iter().map(|(p, _)| *p).collect();
        store.pool.flush_pages(&pages)?;
        Ok(Arc::new(store))
    }

    /// Reopens a versioned store from its durable manifest at
    /// `manifest_head`. The caller must have run journal recovery
    /// ([`Journal::open`]) on `journal` first, so the manifest chain is
    /// either the pre-crash or the fully committed post-crash state.
    pub fn open(
        pool: Arc<BufferPool>,
        journal: Journal,
        manifest_head: PageId,
    ) -> Result<Arc<VersionedStore>> {
        let (mut state, chain) = Self::load_manifest(&pool, manifest_head)?;
        state.manifest_pages = chain;
        // No pins exist at open: collect everything outside the window.
        Self::collect(&mut state);
        Ok(Arc::new(VersionedStore {
            pool,
            journal,
            manifest_head,
            state: Mutex::new(state),
            writer: Mutex::new(()),
        }))
    }

    /// Head page of the durable manifest chain.
    pub fn manifest_head(&self) -> PageId {
        self.manifest_head
    }

    /// The journal this store commits through.
    pub fn journal(&self) -> Journal {
        self.journal
    }

    /// The pool the store reads and writes through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The most recently committed version.
    pub fn latest(&self) -> u32 {
        self.state.lock().latest
    }

    /// Bounded-history window size.
    pub fn keep(&self) -> u32 {
        self.state.lock().keep
    }

    /// Versions currently pinnable (retained window plus pinned
    /// stragglers), ascending.
    pub fn retained(&self) -> Vec<u32> {
        self.state.lock().versions.keys().copied().collect()
    }

    /// Total outstanding reader pins across all versions.
    pub fn pinned_readers(&self) -> usize {
        self.state
            .lock()
            .versions
            .values()
            .map(|s| s.pins as usize)
            .sum()
    }

    /// Physical pages currently on the reclaimed free list.
    pub fn free_pages(&self) -> usize {
        self.state.lock().free.len()
    }

    /// Pins `version` (or the latest when `None`), returning a read-only
    /// [`Snapshot`]. The version stays reclaim-exempt until the snapshot
    /// (and every clone of it) is dropped.
    ///
    /// Fails with [`StoreError::VersionNotRetained`] when the requested
    /// version has aged out of the history window (or never existed).
    pub fn pin(self: &Arc<Self>, version: Option<u32>) -> Result<Snapshot> {
        let mut st = self.state.lock();
        let v = version.unwrap_or(st.latest);
        let slot = st
            .versions
            .get_mut(&v)
            .ok_or(StoreError::VersionNotRetained(v))?;
        slot.pins += 1;
        Ok(Snapshot {
            store: Arc::clone(self),
            info: Arc::clone(&slot.info),
        })
    }

    /// Runs in-memory garbage collection now, returning the number of
    /// physical pages moved to the free list. The durable manifest
    /// reflects the collection at the next commit.
    pub fn gc(&self) -> usize {
        let mut st = self.state.lock();
        let before = st.free.len();
        Self::collect(&mut st);
        st.free.len() - before
    }

    /// Drops retained versions outside the keep-window with zero pins,
    /// then reclaims pending retirements older than every remaining
    /// version. Call with the state lock held.
    fn collect(st: &mut VersionedState) {
        let window_floor = st.latest.saturating_sub(st.keep - 1).max(1);
        let dead: Vec<u32> = st
            .versions
            .iter()
            .filter(|(v, slot)| **v < window_floor && slot.pins == 0)
            .map(|(v, _)| *v)
            .collect();
        for v in dead {
            st.versions.remove(&v);
        }
        let live_floor = st.versions.keys().next().copied().unwrap_or(st.latest);
        let mut reclaimed: Vec<PageId> = Vec::new();
        st.pending.retain(|(retired_at, pages)| {
            if *retired_at < live_floor {
                reclaimed.extend_from_slice(pages);
                false
            } else {
                true
            }
        });
        st.free.extend(reclaimed);
    }

    /// Commits one transaction's write set as the next version.
    ///
    /// `writes` maps **logical** page ids to after-images; `fresh` marks
    /// pages allocated inside this transaction (written in place, since
    /// no earlier version can reference them). `base` is the version the
    /// transaction translated its reads through; commits race-fail with
    /// [`StoreError::WriteConflict`] if another commit landed since.
    ///
    /// Returns the new version number. An empty write set commits
    /// nothing and returns the current latest.
    pub(crate) fn commit_txn(
        &self,
        writes: HashMap<PageId, Box<[u8]>>,
        fresh: &HashSet<PageId>,
        base: u32,
    ) -> Result<u32> {
        let _w = self.writer.lock();
        if writes.is_empty() {
            return Ok(self.latest());
        }
        // Snapshot the mutable state under the lock; everything after
        // (page allocation, serialization, journal I/O) runs without it
        // so readers keep pinning and reading meanwhile.
        let (base_info, mut free, pending, retained, manifest_pages) = {
            let mut st = self.state.lock();
            if st.latest != base {
                return Err(StoreError::WriteConflict {
                    base,
                    latest: st.latest,
                });
            }
            Self::collect(&mut st);
            let retained: Vec<Arc<VersionInfo>> =
                st.versions.values().map(|s| Arc::clone(&s.info)).collect();
            let base_info = Arc::clone(&st.versions[&st.latest].info);
            (
                base_info,
                std::mem::take(&mut st.free),
                st.pending.clone(),
                retained,
                st.manifest_pages.clone(),
            )
        };
        let restore_free = |free: Vec<PageId>| {
            // On failure the popped copy-on-write targets are abandoned
            // (possibly half-written scratch, never referenced); the
            // untouched remainder goes back on the list.
            self.state.lock().free = free;
        };

        let new_version = base_info.version + 1;
        let mut table = base_info.table.clone();
        let mut retired: Vec<PageId> = Vec::new();
        let mut batch: Vec<(PageId, Box<[u8]>)> = Vec::with_capacity(writes.len());
        let mut ordered: Vec<(PageId, Box<[u8]>)> = writes.into_iter().collect();
        ordered.sort_by_key(|(page, _)| *page);
        for (logical, image) in ordered {
            if fresh.contains(&logical) {
                // Born in this transaction: no older version can hold a
                // reference, write through at its own id.
                batch.push((logical, image));
                continue;
            }
            let old_phys = base_info.translate(logical);
            let new_phys = match free.pop() {
                Some(p) => p,
                None => match self.pool.allocate() {
                    Ok(p) => p,
                    Err(e) => {
                        restore_free(free);
                        return Err(e);
                    }
                },
            };
            table.insert(logical, new_phys);
            retired.push(old_phys);
            batch.push((new_phys, image));
        }
        let new_info = Arc::new(VersionInfo {
            version: new_version,
            table,
        });
        let mut new_pending = pending;
        if !retired.is_empty() {
            new_pending.push((base_info.version, retired));
        }

        // Serialize the post-commit manifest and lay it over the reusable
        // chain, extending the chain with free/fresh pages as needed.
        let mut all_versions: Vec<Arc<VersionInfo>> = retained;
        all_versions.push(Arc::clone(&new_info));
        let payload = Self::encode_manifest(
            new_version,
            self.state.lock().keep,
            &all_versions,
            &free,
            &new_pending,
        );
        let pages_needed = payload.len().div_ceil(CHAIN_CAPACITY).max(1);
        let mut chain = manifest_pages;
        while chain.len() < pages_needed {
            let p = match free.pop() {
                Some(p) => p,
                None => match self.pool.allocate() {
                    Ok(p) => p,
                    Err(e) => {
                        restore_free(free);
                        return Err(e);
                    }
                },
            };
            chain.push(p);
        }
        for i in 0..pages_needed {
            let next = if i + 1 < chain.len() {
                chain[i + 1]
            } else {
                INVALID_PAGE
            };
            let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
            buf[0..4].copy_from_slice(&next.to_le_bytes());
            buf[4..8].copy_from_slice(&VMAN_MAGIC.to_le_bytes());
            let lo = i * CHAIN_CAPACITY;
            let hi = payload.len().min(lo + CHAIN_CAPACITY);
            if lo < hi {
                buf[8..8 + (hi - lo)].copy_from_slice(&payload[lo..hi]);
            }
            batch.push((chain[i], buf));
        }
        // Spare tail pages from an earlier, larger manifest keep their
        // on-disk link; `load_manifest` rediscovers them for reuse.

        batch.sort_by_key(|(page, _)| *page);
        if let Err(e) = self.journal.commit(&self.pool, &batch) {
            restore_free(free);
            return Err(e);
        }

        // Publish: one short critical section, after all I/O.
        let mut st = self.state.lock();
        st.latest = new_version;
        st.versions.insert(
            new_version,
            VersionSlot {
                info: new_info,
                pins: 0,
            },
        );
        st.free = free;
        st.pending = new_pending;
        st.manifest_pages = chain;
        // Collect promptly so memory tracks the window; the durable
        // manifest catches up next commit.
        Self::collect(&mut st);
        Ok(new_version)
    }

    /// The latest version's translation info, captured by
    /// [`crate::Txn::begin_versioned`] for read translation.
    pub(crate) fn latest_info(&self) -> Arc<VersionInfo> {
        let st = self.state.lock();
        Arc::clone(&st.versions[&st.latest].info)
    }

    /// Lowest version any retained snapshot can read. Cache layers keyed
    /// by version can discard entries below this floor.
    pub fn version_floor(&self) -> u32 {
        let st = self.state.lock();
        st.versions.keys().next().copied().unwrap_or(st.latest)
    }

    fn unpin(&self, version: u32) {
        let mut st = self.state.lock();
        if let Some(slot) = st.versions.get_mut(&version) {
            slot.pins = slot.pins.saturating_sub(1);
        }
    }

    /// Serializes the manifest payload. Versions are stored ascending:
    /// the first as a full table, later ones as diffs against their
    /// predecessor in the *retained* list (entries are add-only, so a
    /// diff is just the added/changed pairs).
    fn encode_manifest(
        latest: u32,
        keep: u32,
        versions: &[Arc<VersionInfo>],
        free: &[PageId],
        pending: &[(u32, Vec<PageId>)],
    ) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&latest.to_le_bytes());
        body.extend_from_slice(&keep.to_le_bytes());
        body.extend_from_slice(&(versions.len() as u32).to_le_bytes());
        let mut prev: Option<&BTreeMap<PageId, PageId>> = None;
        for info in versions {
            body.extend_from_slice(&info.version.to_le_bytes());
            let entries: Vec<(PageId, PageId)> = match prev {
                None => info.table.iter().map(|(l, p)| (*l, *p)).collect(),
                Some(prev_table) => info
                    .table
                    .iter()
                    .filter(|(l, p)| prev_table.get(l) != Some(p))
                    .map(|(l, p)| (*l, *p))
                    .collect(),
            };
            body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (l, p) in entries {
                body.extend_from_slice(&l.to_le_bytes());
                body.extend_from_slice(&p.to_le_bytes());
            }
            prev = Some(&info.table);
        }
        body.extend_from_slice(&(free.len() as u32).to_le_bytes());
        for p in free {
            body.extend_from_slice(&p.to_le_bytes());
        }
        body.extend_from_slice(&(pending.len() as u32).to_le_bytes());
        for (retired_at, pages) in pending {
            body.extend_from_slice(&retired_at.to_le_bytes());
            body.extend_from_slice(&(pages.len() as u32).to_le_bytes());
            for p in pages {
                body.extend_from_slice(&p.to_le_bytes());
            }
        }
        let mut payload = Vec::with_capacity(8 + 4 + body.len());
        payload.extend_from_slice(VMAN_HEADER);
        payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
        payload.extend_from_slice(&body);
        payload
    }

    /// Chain images for the current state — used only by `create` for
    /// the initial (journal-free) manifest write.
    fn manifest_images(
        &self,
        st: &VersionedState,
        chain: &[PageId],
    ) -> Result<Vec<(PageId, Box<[u8]>)>> {
        let versions: Vec<Arc<VersionInfo>> =
            st.versions.values().map(|s| Arc::clone(&s.info)).collect();
        let payload = Self::encode_manifest(st.latest, st.keep, &versions, &st.free, &st.pending);
        if payload.len() > chain.len() * CHAIN_CAPACITY {
            return Err(StoreError::corrupt("manifest chain too short"));
        }
        let mut images = Vec::with_capacity(chain.len());
        for i in 0..chain.len() {
            let next = if i + 1 < chain.len() {
                chain[i + 1]
            } else {
                INVALID_PAGE
            };
            let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
            buf[0..4].copy_from_slice(&next.to_le_bytes());
            buf[4..8].copy_from_slice(&VMAN_MAGIC.to_le_bytes());
            let lo = i * CHAIN_CAPACITY;
            let hi = payload.len().min(lo + CHAIN_CAPACITY);
            if lo < hi {
                buf[8..8 + (hi - lo)].copy_from_slice(&payload[lo..hi]);
            }
            images.push((chain[i], buf));
        }
        Ok(images)
    }

    /// Walks the chain from `head`, returning the parsed state (pins
    /// zeroed) and the full list of chain pages (including spare tail
    /// pages kept linked for reuse).
    fn load_manifest(pool: &BufferPool, head: PageId) -> Result<(VersionedState, Vec<PageId>)> {
        // First pass: collect the chain and the raw payload bytes.
        let mut chain = Vec::new();
        let mut payload = Vec::new();
        let mut cursor = head;
        while cursor != INVALID_PAGE {
            let next = pool.with_page(cursor, |b| {
                if u32::from_le_bytes(b[4..8].try_into().unwrap()) != VMAN_MAGIC {
                    return Err(StoreError::corrupt_page(cursor, "manifest chain broken"));
                }
                payload.extend_from_slice(&b[8..]);
                Ok(PageId::from_le_bytes(b[0..4].try_into().unwrap()))
            })??;
            chain.push(cursor);
            cursor = next;
            if chain.len() > 1_000_000 {
                return Err(StoreError::corrupt("manifest chain cycle"));
            }
        }
        if payload.len() < 12 || &payload[0..8] != VMAN_HEADER {
            return Err(StoreError::corrupt_page(head, "manifest header missing"));
        }
        let body_len = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
        if payload.len() < 12 + body_len {
            return Err(StoreError::corrupt_page(head, "manifest truncated"));
        }
        let body = &payload[12..12 + body_len];
        let mut r = ManifestReader { body, at: 0 };
        let latest = r.u32()?;
        let keep = r.u32()?.max(1);
        let num_versions = r.u32()? as usize;
        let mut versions: BTreeMap<u32, VersionSlot> = BTreeMap::new();
        let mut prev_table: BTreeMap<PageId, PageId> = BTreeMap::new();
        for _ in 0..num_versions {
            let version = r.u32()?;
            let entries = r.u32()? as usize;
            let mut table = prev_table.clone();
            for _ in 0..entries {
                let l = r.u32()?;
                let p = r.u32()?;
                table.insert(l, p);
            }
            prev_table = table.clone();
            versions.insert(
                version,
                VersionSlot {
                    info: Arc::new(VersionInfo { version, table }),
                    pins: 0,
                },
            );
        }
        let free_len = r.u32()? as usize;
        let mut free = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            free.push(r.u32()?);
        }
        let pending_len = r.u32()? as usize;
        let mut pending = Vec::with_capacity(pending_len);
        for _ in 0..pending_len {
            let retired_at = r.u32()?;
            let n = r.u32()? as usize;
            let mut pages = Vec::with_capacity(n);
            for _ in 0..n {
                pages.push(r.u32()?);
            }
            pending.push((retired_at, pages));
        }
        if versions.is_empty() || !versions.contains_key(&latest) {
            return Err(StoreError::corrupt_page(head, "manifest missing latest"));
        }
        Ok((
            VersionedState {
                latest,
                versions,
                free,
                pending,
                manifest_pages: Vec::new(),
                keep,
            },
            chain,
        ))
    }
}

struct ManifestReader<'a> {
    body: &'a [u8],
    at: usize,
}

impl ManifestReader<'_> {
    fn u32(&mut self) -> Result<u32> {
        if self.at + 4 > self.body.len() {
            return Err(StoreError::corrupt("manifest body truncated"));
        }
        let v = u32::from_le_bytes(self.body[self.at..self.at + 4].try_into().unwrap());
        self.at += 4;
        Ok(v)
    }
}

/// A pinned, read-only view of one version.
///
/// Implements [`PageStore`] by translating logical page ids through the
/// pinned version table, so any code generic over page access (node
/// codecs, traversals) reads a consistent point-in-time image. Mutation
/// through a snapshot is an error. Dropping the snapshot releases the
/// pin; cloning takes an additional pin on the same version.
pub struct Snapshot {
    store: Arc<VersionedStore>,
    info: Arc<VersionInfo>,
}

impl Snapshot {
    /// The pinned version number.
    pub fn version(&self) -> u32 {
        self.info.version
    }

    /// The pinned version's translation table.
    pub fn info(&self) -> &VersionInfo {
        &self.info
    }

    /// Physical page backing `logical` in this snapshot.
    pub fn translate(&self, logical: PageId) -> PageId {
        self.info.translate(logical)
    }

    /// The store this snapshot pins.
    pub fn store(&self) -> &Arc<VersionedStore> {
        &self.store
    }
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        let mut st = self.store.state.lock();
        if let Some(slot) = st.versions.get_mut(&self.info.version) {
            slot.pins += 1;
        }
        drop(st);
        Snapshot {
            store: Arc::clone(&self.store),
            info: Arc::clone(&self.info),
        }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.store.unpin(self.info.version);
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.info.version)
            .field("table_len", &self.info.table.len())
            .finish()
    }
}

impl PageStore for Snapshot {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.store.pool.with_page(self.translate(id), f)
    }

    fn with_page_mut<R>(&self, _id: PageId, _f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        Err(StoreError::corrupt("snapshot pages are read-only"))
    }

    fn allocate(&self) -> Result<PageId> {
        Err(StoreError::corrupt("snapshot pages are read-only"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDisk, Txn};

    fn setup(keep: u32) -> (Arc<BufferPool>, Arc<VersionedStore>, Vec<PageId>) {
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 64));
        // A few data pages with recognizable content.
        let mut pages = Vec::new();
        for i in 0..4u8 {
            let p = pool.allocate().unwrap();
            pool.with_page_mut(p, |b| b[0] = 10 + i).unwrap();
            pages.push(p);
        }
        let journal = Journal::create(&pool).unwrap();
        let store = VersionedStore::create(Arc::clone(&pool), journal, keep).unwrap();
        (pool, store, pages)
    }

    fn write(store: &Arc<VersionedStore>, page: PageId, byte: u8) -> u32 {
        let txn = Txn::begin_versioned(store).unwrap();
        txn.with_page_mut(page, |b| b[0] = byte).unwrap();
        txn.commit_versioned().unwrap()
    }

    fn read(snap: &Snapshot, page: PageId) -> u8 {
        snap.with_page(page, |b| b[0]).unwrap()
    }

    #[test]
    fn snapshots_are_immutable_across_commits() {
        let (_pool, store, pages) = setup(8);
        let v1 = store.pin(None).unwrap();
        assert_eq!(v1.version(), 1);
        assert_eq!(read(&v1, pages[0]), 10);
        let v2 = write(&store, pages[0], 99);
        assert_eq!(v2, 2);
        // The old snapshot still reads the old byte; a fresh pin sees
        // the new one.
        assert_eq!(read(&v1, pages[0]), 10);
        let s2 = store.pin(None).unwrap();
        assert_eq!(s2.version(), 2);
        assert_eq!(read(&s2, pages[0]), 99);
        // Untouched pages are identity in both.
        assert_eq!(read(&v1, pages[1]), 11);
        assert_eq!(read(&s2, pages[1]), 11);
    }

    #[test]
    fn pinning_specific_versions_time_travels() {
        let (_pool, store, pages) = setup(8);
        for round in 0..5u8 {
            write(&store, pages[0], 50 + round);
        }
        assert_eq!(store.latest(), 6);
        for v in 2..=6u32 {
            let s = store.pin(Some(v)).unwrap();
            assert_eq!(read(&s, pages[0]), 50 + (v - 2) as u8);
        }
        let s1 = store.pin(Some(1)).unwrap();
        assert_eq!(read(&s1, pages[0]), 10);
    }

    #[test]
    fn history_window_ages_out_unpinned_versions() {
        let (_pool, store, pages) = setup(2);
        for round in 0..4u8 {
            write(&store, pages[0], 70 + round);
        }
        assert_eq!(store.latest(), 5);
        // keep=2: only versions 4 and 5 remain pinnable.
        assert!(matches!(
            store.pin(Some(1)),
            Err(StoreError::VersionNotRetained(1))
        ));
        assert!(matches!(
            store.pin(Some(3)),
            Err(StoreError::VersionNotRetained(3))
        ));
        assert_eq!(store.retained(), vec![4, 5]);
        assert_eq!(read(&store.pin(Some(4)).unwrap(), pages[0]), 72);
    }

    #[test]
    fn pinned_version_survives_aging_and_gc() {
        let (_pool, store, pages) = setup(2);
        let old = store.pin(None).unwrap(); // version 1
        for round in 0..4u8 {
            write(&store, pages[0], 70 + round);
        }
        store.gc();
        // Version 1 is far outside keep=2 but pinned: still readable,
        // still retained, and its page was never reclaimed.
        assert_eq!(read(&old, pages[0]), 10);
        assert!(store.retained().contains(&1));
        // Release it: now it ages out.
        drop(old);
        store.gc();
        assert!(!store.retained().contains(&1));
        assert!(matches!(
            store.pin(Some(1)),
            Err(StoreError::VersionNotRetained(1))
        ));
    }

    #[test]
    fn gc_reclaims_and_reuses_retired_pages() {
        let (pool, store, pages) = setup(1);
        for round in 0..3u8 {
            write(&store, pages[0], 30 + round);
        }
        store.gc();
        assert!(store.free_pages() > 0, "retired copies should be freed");
        let grown = pool.num_pages();
        // Further commits should reuse the free list, not grow the pool.
        write(&store, pages[0], 40);
        write(&store, pages[0], 41);
        assert_eq!(pool.num_pages(), grown);
        assert_eq!(read(&store.pin(None).unwrap(), pages[0]), 41);
    }

    #[test]
    fn manifest_survives_reopen() {
        let (pool, store, pages) = setup(4);
        write(&store, pages[0], 91);
        write(&store, pages[1], 92);
        let head = store.manifest_head();
        let latest = store.latest();
        let retained = store.retained();
        let journal = store.journal();
        drop(store);
        let reopened = VersionedStore::open(Arc::clone(&pool), journal, head).unwrap();
        assert_eq!(reopened.latest(), latest);
        assert_eq!(reopened.retained(), retained);
        assert_eq!(read(&reopened.pin(None).unwrap(), pages[0]), 91);
        assert_eq!(read(&reopened.pin(None).unwrap(), pages[1]), 92);
        // Time travel still works across the reopen.
        assert_eq!(read(&reopened.pin(Some(1)).unwrap(), pages[0]), 10);
    }

    #[test]
    fn write_conflict_is_detected() {
        let (_pool, store, pages) = setup(4);
        let t1 = Txn::begin_versioned(&store).unwrap();
        t1.with_page_mut(pages[0], |b| b[0] = 1).unwrap();
        let t2 = Txn::begin_versioned(&store).unwrap();
        t2.with_page_mut(pages[1], |b| b[0] = 2).unwrap();
        t1.commit_versioned().unwrap();
        assert!(matches!(
            t2.commit_versioned(),
            Err(StoreError::WriteConflict { base: 1, latest: 2 })
        ));
    }

    #[test]
    fn snapshot_rejects_mutation() {
        let (_pool, store, pages) = setup(4);
        let s = store.pin(None).unwrap();
        assert!(s.with_page_mut(pages[0], |_| ()).is_err());
        assert!(s.allocate().is_err());
    }

    #[test]
    fn pins_are_counted_and_released() {
        let (_pool, store, _pages) = setup(4);
        assert_eq!(store.pinned_readers(), 0);
        let a = store.pin(None).unwrap();
        let b = a.clone();
        assert_eq!(store.pinned_readers(), 2);
        drop(a);
        assert_eq!(store.pinned_readers(), 1);
        drop(b);
        assert_eq!(store.pinned_readers(), 0);
    }

    #[test]
    fn dropped_versioned_txn_changes_nothing() {
        let (_pool, store, pages) = setup(4);
        {
            let txn = Txn::begin_versioned(&store).unwrap();
            txn.with_page_mut(pages[0], |b| b[0] = 222).unwrap();
        }
        assert_eq!(store.latest(), 1);
        assert_eq!(read(&store.pin(None).unwrap(), pages[0]), 10);
    }

    #[test]
    fn fresh_pages_write_in_place() {
        let (pool, store, _pages) = setup(4);
        let txn = Txn::begin_versioned(&store).unwrap();
        let p = txn.allocate().unwrap();
        txn.with_page_mut(p, |b| b[0] = 77).unwrap();
        txn.commit_versioned().unwrap();
        let snap = store.pin(None).unwrap();
        // Identity mapping: no table entry was spent on the fresh page.
        assert_eq!(snap.translate(p), p);
        assert_eq!(read(&snap, p), 77);
        assert_eq!(pool.with_page(p, |b| b[0]).unwrap(), 77);
    }
}
