//! A heap file of fixed-size records, chained page to page.
//!
//! Page layout: `next: u32` (page id of the successor, [`INVALID_PAGE`] at
//! the tail), `count: u32`, then `count` records of `record_size` bytes.
//!
//! Dataset scans (GORDER's sorted input file, BNN's sorted query file) run
//! through [`HeapFile::scan`], so they are charged buffer-pool I/O exactly
//! like index traversals are.

use crate::{BufferPool, PageId, Result, StoreError, INVALID_PAGE, PAGE_SIZE};
use std::sync::Arc;

const HEADER: usize = 8;

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn write_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

/// A chained file of fixed-size records stored through a [`BufferPool`].
pub struct HeapFile {
    pool: Arc<BufferPool>,
    record_size: usize,
    per_page: usize,
    first: PageId,
    last: PageId,
    /// In-memory extent directory: page id of every page in the chain, in
    /// order. Keeps record addressing O(1) instead of walking the chain.
    pages: Vec<PageId>,
    len: u64,
}

impl HeapFile {
    /// Creates an empty heap file of `record_size`-byte records.
    ///
    /// # Panics
    ///
    /// Panics if a record (plus header) does not fit in one page or if
    /// `record_size` is zero.
    pub fn create(pool: Arc<BufferPool>, record_size: usize) -> Result<Self> {
        assert!(record_size > 0, "record size must be positive");
        assert!(
            record_size <= PAGE_SIZE - HEADER,
            "record of {record_size} bytes does not fit in a page"
        );
        let first = pool.allocate()?;
        pool.with_page_mut(first, |bytes| {
            write_u32(bytes, 0, INVALID_PAGE);
            write_u32(bytes, 4, 0);
        })?;
        Ok(HeapFile {
            pool,
            record_size,
            per_page: (PAGE_SIZE - HEADER) / record_size,
            first,
            last: first,
            pages: vec![first],
            len: 0,
        })
    }

    /// Number of records in the file.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records stored per page.
    pub fn records_per_page(&self) -> usize {
        self.per_page
    }

    /// Page id of the first page in the chain.
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// Number of pages in the chain.
    pub fn num_pages(&self) -> u64 {
        if self.len == 0 {
            1
        } else {
            self.len.div_ceil(self.per_page as u64)
        }
    }

    /// Appends one record.
    ///
    /// # Panics
    ///
    /// Panics if `record.len() != record_size`.
    pub fn append(&mut self, record: &[u8]) -> Result<()> {
        assert_eq!(record.len(), self.record_size, "record size mismatch");
        let count = self
            .pool
            .with_page(self.last, |bytes| read_u32(bytes, 4) as usize)?;
        let target = if count < self.per_page {
            self.last
        } else {
            let new_page = self.pool.allocate()?;
            self.pool.with_page_mut(new_page, |bytes| {
                write_u32(bytes, 0, INVALID_PAGE);
                write_u32(bytes, 4, 0);
            })?;
            self.pool
                .with_page_mut(self.last, |bytes| write_u32(bytes, 0, new_page))?;
            self.last = new_page;
            self.pages.push(new_page);
            new_page
        };
        let rec_size = self.record_size;
        self.pool.with_page_mut(target, |bytes| {
            let count = read_u32(bytes, 4) as usize;
            let at = HEADER + count * rec_size;
            bytes[at..at + rec_size].copy_from_slice(record);
            write_u32(bytes, 4, (count + 1) as u32);
        })?;
        self.len += 1;
        Ok(())
    }

    /// Reads the record at position `idx` (O(1) via the page directory).
    pub fn get(&self, idx: u64) -> Result<Vec<u8>> {
        if idx >= self.len {
            return Err(StoreError::corrupt("heap record index out of range"));
        }
        let page = self.pages[idx as usize / self.per_page];
        let slot = idx as usize % self.per_page;
        let rec_size = self.record_size;
        self.pool.with_page(page, |bytes| {
            let at = HEADER + slot * rec_size;
            bytes[at..at + rec_size].to_vec()
        })
    }

    /// Visits the records `start .. start + count` in order, calling
    /// `f(index, bytes)`. Reads each touched page once.
    ///
    /// Each page is copied out of the pool before `f` runs, so the
    /// callback may itself go through the same pool (e.g. appending to
    /// another heap file) without deadlocking on a page latch.
    pub fn scan_range(&self, start: u64, count: u64, mut f: impl FnMut(u64, &[u8])) -> Result<()> {
        if start + count > self.len {
            return Err(StoreError::corrupt("heap scan range out of bounds"));
        }
        let rec_size = self.record_size;
        let mut copy = vec![0u8; PAGE_SIZE];
        let mut idx = start;
        let end = start + count;
        while idx < end {
            let page = self.pages[idx as usize / self.per_page];
            let first_slot = idx as usize % self.per_page;
            let here = (self.per_page - first_slot).min((end - idx) as usize);
            self.pool.with_page(page, |bytes| copy.copy_from_slice(bytes))?;
            for s in 0..here {
                let at = HEADER + (first_slot + s) * rec_size;
                f(idx + s as u64, &copy[at..at + rec_size]);
            }
            idx += here as u64;
        }
        Ok(())
    }

    /// Visits every record in order, calling `f(index, bytes)`.
    ///
    /// Each page is copied out of the pool before `f` runs, so the
    /// callback may itself go through the same pool (e.g. appending to
    /// another heap file) without deadlocking on a page latch.
    pub fn scan(&self, mut f: impl FnMut(u64, &[u8])) -> Result<()> {
        let mut page = self.first;
        let mut idx = 0u64;
        let rec_size = self.record_size;
        let mut copy = vec![0u8; PAGE_SIZE];
        while page != INVALID_PAGE {
            self.pool.with_page(page, |bytes| copy.copy_from_slice(bytes))?;
            let count = read_u32(&copy, 4) as usize;
            for slot in 0..count {
                let at = HEADER + slot * rec_size;
                f(idx, &copy[at..at + rec_size]);
                idx += 1;
            }
            page = read_u32(&copy, 0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(MemDisk::new(), 8))
    }

    #[test]
    fn append_and_get() {
        let mut hf = HeapFile::create(pool(), 8).unwrap();
        for i in 0u64..100 {
            hf.append(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(hf.len(), 100);
        for i in (0u64..100).rev() {
            assert_eq!(hf.get(i).unwrap(), i.to_le_bytes());
        }
        assert!(hf.get(100).is_err());
    }

    #[test]
    fn scan_visits_in_order_across_pages() {
        // Large records force multiple pages.
        let mut hf = HeapFile::create(pool(), 1024).unwrap();
        assert_eq!(hf.records_per_page(), (PAGE_SIZE - HEADER) / 1024);
        let n = 50u64; // > 7 records/page → several pages
        for i in 0..n {
            let mut rec = vec![0u8; 1024];
            rec[..8].copy_from_slice(&i.to_le_bytes());
            hf.append(&rec).unwrap();
        }
        assert!(hf.num_pages() > 3);
        let mut seen = vec![];
        hf.scan(|idx, bytes| {
            assert_eq!(idx, u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            seen.push(idx);
        })
        .unwrap();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn scan_of_empty_file() {
        let hf = HeapFile::create(pool(), 16).unwrap();
        assert!(hf.is_empty());
        assert_eq!(hf.num_pages(), 1);
        let mut called = false;
        hf.scan(|_, _| called = true).unwrap();
        assert!(!called);
    }

    #[test]
    fn survives_pool_eviction() {
        // Pool of 2 frames but a file of many pages: records must survive
        // round trips through the (Mem)disk.
        let pool = Arc::new(BufferPool::new(MemDisk::new(), 2));
        let mut hf = HeapFile::create(pool.clone(), 2000).unwrap();
        for i in 0u64..40 {
            let mut rec = vec![0u8; 2000];
            rec[..8].copy_from_slice(&i.to_le_bytes());
            hf.append(&rec).unwrap();
        }
        pool.reset_stats();
        let mut count = 0;
        hf.scan(|idx, bytes| {
            assert_eq!(idx, u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            count += 1;
        })
        .unwrap();
        assert_eq!(count, 40);
        assert!(
            pool.stats().physical_reads > 0,
            "a 2-frame pool cannot hold the whole file"
        );
    }

    #[test]
    #[should_panic(expected = "record size mismatch")]
    fn append_rejects_wrong_size() {
        let mut hf = HeapFile::create(pool(), 8).unwrap();
        hf.append(&[0u8; 4]).unwrap();
    }
}
