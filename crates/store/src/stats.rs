//! I/O accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic I/O counters, incremented by the buffer pool.
///
/// "Logical" reads are page requests served from anywhere; "physical" reads
/// and writes are the subset that actually reached the disk backend —
/// physical reads are the buffer-pool misses that the paper's I/O bars
/// measure. `retries` counts re-attempts of transient physical failures
/// under the pool's [`crate::RetryPolicy`]; `checksum_failures` counts
/// frames that came back from the backend failing CRC verification.
///
/// The sharded pool additionally keeps per-shard cache counters:
/// `pool_hits` / `pool_misses` split the logical reads by whether the page
/// was resident, and `lock_contention` counts accesses that found their
/// shard lock already held by another thread (each such event is one
/// blocked lock acquisition — the scalability signal the thread-scaling
/// benchmark tracks). `evictions` counts resident pages pushed out to make
/// room, which together with `pool_misses` shows whether a phase is
/// thrashing the pool or merely cold.
///
/// The prefetcher keeps its own triple: `prefetch_issued` counts pages it
/// physically read ahead of demand, `prefetch_hits` counts prefetched
/// frames later claimed by a demand access, and `prefetch_wasted` counts
/// prefetched frames evicted without ever being demanded. None of these
/// feed `logical_reads` — readahead changes *when* a physical read
/// happens, never whether a logical one does.
#[derive(Default, Debug)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    retries: AtomicU64,
    checksum_failures: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    lock_contention: AtomicU64,
    evictions: AtomicU64,
    quarantined_pages: AtomicU64,
    quarantine_hits: AtomicU64,
    prefetch_issued: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_wasted: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_pool_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_lock_contention(&self) {
        self.lock_contention.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_quarantined_page(&self) {
        self.quarantined_pages.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_quarantine_hit(&self) {
        self.quarantine_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_prefetch_issued(&self) {
        self.prefetch_issued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_prefetch_wasted(&self) {
        self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads just the physical-read counter, without folding a full
    /// snapshot. Query guards poll this on every expansion when an I/O
    /// budget is armed, so it must stay a single relaxed load.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            lock_contention: self.lock_contention.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined_pages: self.quarantined_pages.load(Ordering::Relaxed),
            quarantine_hits: self.quarantine_hits.load(Ordering::Relaxed),
            prefetch_issued: self.prefetch_issued.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            prefetch_wasted: self.prefetch_wasted.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (used between benchmark phases).
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.checksum_failures.store(0, Ordering::Relaxed);
        self.pool_hits.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.lock_contention.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.quarantined_pages.store(0, Ordering::Relaxed);
        self.quarantine_hits.store(0, Ordering::Relaxed);
        self.prefetch_issued.store(0, Ordering::Relaxed);
        self.prefetch_hits.store(0, Ordering::Relaxed);
        self.prefetch_wasted.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page requests served (hit or miss).
    pub logical_reads: u64,
    /// Buffer-pool misses that read from the backend.
    pub physical_reads: u64,
    /// Dirty-page evictions and flushes that wrote to the backend.
    pub physical_writes: u64,
    /// Transient-fault re-attempts made under the retry policy.
    pub retries: u64,
    /// Frames read from the backend that failed CRC verification.
    pub checksum_failures: u64,
    /// Page accesses served by a resident, decoded-and-verified frame.
    pub pool_hits: u64,
    /// Page accesses that had to fault the page in from the backend
    /// (counted even when the physical read then fails).
    pub pool_misses: u64,
    /// Shard-lock acquisitions that found the lock already held.
    pub lock_contention: u64,
    /// Resident pages evicted to make room (dirty victims additionally
    /// count one `physical_writes`).
    pub evictions: u64,
    /// Pages added to the corrupt-page quarantine set (each failed
    /// verification quarantines its page exactly once).
    pub quarantined_pages: u64,
    /// Accesses rejected fast because the page was already quarantined.
    pub quarantine_hits: u64,
    /// Pages the prefetcher physically read ahead of demand (each also
    /// counts one `physical_reads`; none counts a logical read).
    pub prefetch_issued: u64,
    /// Prefetched frames later claimed by a demand access — the read the
    /// prefetcher turned from a stall into a pool hit.
    pub prefetch_hits: u64,
    /// Prefetched frames evicted before any demand access claimed them:
    /// readahead bandwidth spent for nothing.
    pub prefetch_wasted: u64,
}

impl IoSnapshot {
    /// Total physical page transfers.
    pub fn physical_total(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer-pool hit rate in `[0, 1]`; 1.0 when nothing was read.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            return 1.0;
        }
        1.0 - self.physical_reads as f64 / self.logical_reads as f64
    }

    /// Counter-wise difference (`self - earlier`), for measuring a phase.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            retries: self.retries - earlier.retries,
            checksum_failures: self.checksum_failures - earlier.checksum_failures,
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
            lock_contention: self.lock_contention - earlier.lock_contention,
            evictions: self.evictions - earlier.evictions,
            quarantined_pages: self.quarantined_pages - earlier.quarantined_pages,
            quarantine_hits: self.quarantine_hits - earlier.quarantine_hits,
            prefetch_issued: self.prefetch_issued - earlier.prefetch_issued,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            prefetch_wasted: self.prefetch_wasted - earlier.prefetch_wasted,
        }
    }

    /// Counter-wise sum, for folding per-shard or per-pool snapshots into
    /// one aggregate.
    pub fn merge(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads + other.logical_reads,
            physical_reads: self.physical_reads + other.physical_reads,
            physical_writes: self.physical_writes + other.physical_writes,
            retries: self.retries + other.retries,
            checksum_failures: self.checksum_failures + other.checksum_failures,
            pool_hits: self.pool_hits + other.pool_hits,
            pool_misses: self.pool_misses + other.pool_misses,
            lock_contention: self.lock_contention + other.lock_contention,
            evictions: self.evictions + other.evictions,
            quarantined_pages: self.quarantined_pages + other.quarantined_pages,
            quarantine_hits: self.quarantine_hits + other.quarantine_hits,
            prefetch_issued: self.prefetch_issued + other.prefetch_issued,
            prefetch_hits: self.prefetch_hits + other.prefetch_hits,
            prefetch_wasted: self.prefetch_wasted + other.prefetch_wasted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let s = IoStats::new();
        s.record_logical_read();
        s.record_logical_read();
        s.record_physical_read();
        s.record_physical_write();
        s.record_retry();
        s.record_checksum_failure();
        s.record_pool_hit();
        s.record_pool_miss();
        s.record_lock_contention();
        s.record_eviction();
        s.record_quarantined_page();
        s.record_quarantine_hit();
        s.record_prefetch_issued();
        s.record_prefetch_hit();
        s.record_prefetch_wasted();
        let snap = s.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.checksum_failures, 1);
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.pool_misses, 1);
        assert_eq!(snap.lock_contention, 1);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.quarantined_pages, 1);
        assert_eq!(snap.quarantine_hits, 1);
        assert_eq!(snap.prefetch_issued, 1);
        assert_eq!(snap.prefetch_hits, 1);
        assert_eq!(snap.prefetch_wasted, 1);
        assert_eq!(snap.physical_total(), 2);
        assert_eq!(snap.hit_rate(), 0.5);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_logical_read();
        s.record_retry();
        s.record_pool_hit();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
        assert_eq!(s.snapshot().hit_rate(), 1.0);
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_logical_read();
        let a = s.snapshot();
        s.record_logical_read();
        s.record_physical_read();
        s.record_retry();
        s.record_pool_miss();
        s.record_quarantined_page();
        s.record_quarantine_hit();
        s.record_prefetch_issued();
        s.record_prefetch_hit();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.logical_reads, 1);
        assert_eq!(d.physical_reads, 1);
        assert_eq!(d.retries, 1);
        assert_eq!(d.pool_misses, 1);
        assert_eq!(d.quarantined_pages, 1);
        assert_eq!(d.quarantine_hits, 1);
        assert_eq!(d.prefetch_issued, 1);
        assert_eq!(d.prefetch_hits, 1);
        assert_eq!(d.prefetch_wasted, 0);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let s = IoStats::new();
        s.record_logical_read();
        s.record_pool_hit();
        s.record_quarantined_page();
        s.record_quarantine_hit();
        s.record_prefetch_issued();
        s.record_prefetch_wasted();
        let a = s.snapshot();
        let m = a.merge(&a);
        assert_eq!(m.logical_reads, 2);
        assert_eq!(m.pool_hits, 2);
        assert_eq!(m.physical_reads, 0);
        assert_eq!(m.quarantined_pages, 2);
        assert_eq!(m.quarantine_hits, 2);
        assert_eq!(m.prefetch_issued, 2);
        assert_eq!(m.prefetch_hits, 0);
        assert_eq!(m.prefetch_wasted, 2);
    }
}
