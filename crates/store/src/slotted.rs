//! A classic slotted-page layout for variable-length records.
//!
//! Layout within one [`crate::PAGE_SIZE`]-byte page:
//!
//! ```text
//! +--------------+----------------------------+-------------------+
//! | header (4 B) | record heap (grows right)  | slot dir (grows   |
//! | n_slots, free|                            | left from the end)|
//! +--------------+----------------------------+-------------------+
//! ```
//!
//! * header: `n_slots: u16`, `free: u16` (offset of the first free byte);
//! * each slot (4 bytes, allocated from the page end backwards):
//!   `offset: u16`, `len: u16`.
//!
//! [`SlottedPage`] is a zero-copy *view* over a page's bytes — it borrows
//! the buffer-pool frame and never allocates.

use crate::{Result, StoreError};

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Read-only view of a slotted page.
pub struct SlottedPage<'a> {
    bytes: &'a [u8],
}

/// Mutable view of a slotted page.
pub struct SlottedPageMut<'a> {
    bytes: &'a mut [u8],
}

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn write_u16(bytes: &mut [u8], at: usize, v: u16) {
    bytes[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

impl<'a> SlottedPage<'a> {
    /// Wraps existing page bytes. A zeroed page is a valid empty slotted
    /// page (0 slots, free pointer interpreted as just past the header).
    pub fn new(bytes: &'a [u8]) -> Self {
        SlottedPage { bytes }
    }

    /// Number of records on the page.
    pub fn len(&self) -> usize {
        read_u16(self.bytes, 0) as usize
    }

    /// `true` when the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of the record in `slot`, or `None` when out of range.
    pub fn get(&self, slot: usize) -> Option<&'a [u8]> {
        if slot >= self.len() {
            return None;
        }
        let dir = self.bytes.len() - SLOT * (slot + 1);
        let off = read_u16(self.bytes, dir) as usize;
        let len = read_u16(self.bytes, dir + 2) as usize;
        self.bytes.get(off..off + len)
    }

    /// Iterates over all records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        (0..self.len()).filter_map(move |i| self.get(i))
    }

    /// Free bytes remaining for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let n = self.len();
        let free = if n == 0 {
            HEADER
        } else {
            read_u16(self.bytes, 2) as usize
        };
        let dir_start = self.bytes.len() - SLOT * n;
        dir_start.saturating_sub(free).saturating_sub(SLOT)
    }
}

impl<'a> SlottedPageMut<'a> {
    /// Wraps page bytes mutably. A zeroed page is a valid empty page.
    pub fn new(bytes: &'a mut [u8]) -> Self {
        SlottedPageMut { bytes }
    }

    /// Read-only view of the same page.
    pub fn as_ref(&self) -> SlottedPage<'_> {
        SlottedPage { bytes: self.bytes }
    }

    /// Appends `record`, returning its slot number.
    ///
    /// Fails with [`StoreError::RecordTooLarge`] when the page cannot hold
    /// the record plus its slot entry.
    pub fn push(&mut self, record: &[u8]) -> Result<usize> {
        let n = read_u16(self.bytes, 0) as usize;
        let free = if n == 0 {
            HEADER
        } else {
            read_u16(self.bytes, 2) as usize
        };
        let dir_start = self.bytes.len() - SLOT * n;
        let available = dir_start.saturating_sub(free).saturating_sub(SLOT);
        if record.len() > available {
            return Err(StoreError::RecordTooLarge {
                requested: record.len(),
                available,
            });
        }
        self.bytes[free..free + record.len()].copy_from_slice(record);
        let dir = self.bytes.len() - SLOT * (n + 1);
        write_u16(self.bytes, dir, free as u16);
        write_u16(self.bytes, dir + 2, record.len() as u16);
        write_u16(self.bytes, 0, (n + 1) as u16);
        write_u16(self.bytes, 2, (free + record.len()) as u16);
        Ok(n)
    }

    /// Clears the page back to zero records.
    pub fn clear(&mut self) {
        write_u16(self.bytes, 0, 0);
        write_u16(self.bytes, 2, HEADER as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn push_and_get_roundtrip() {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut page = SlottedPageMut::new(&mut buf);
        assert_eq!(page.push(b"hello").unwrap(), 0);
        assert_eq!(page.push(b"").unwrap(), 1);
        assert_eq!(page.push(b"world!").unwrap(), 2);
        let view = SlottedPage::new(&buf);
        assert_eq!(view.len(), 3);
        assert_eq!(view.get(0).unwrap(), b"hello");
        assert_eq!(view.get(1).unwrap(), b"");
        assert_eq!(view.get(2).unwrap(), b"world!");
        assert_eq!(view.get(3), None);
    }

    #[test]
    fn zeroed_page_is_empty() {
        let buf = vec![0u8; PAGE_SIZE];
        let view = SlottedPage::new(&buf);
        assert!(view.is_empty());
        assert_eq!(view.iter().count(), 0);
        assert!(view.free_space() > PAGE_SIZE - 16);
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut page = SlottedPageMut::new(&mut buf);
        let record = [7u8; 100];
        let mut pushed = 0;
        while page.push(&record).is_ok() {
            pushed += 1;
        }
        // 104 bytes per record (100 + 4-byte slot): expect ~78 records.
        assert_eq!(pushed, (PAGE_SIZE - HEADER) / (100 + SLOT));
        // Too-large record reports the remaining space.
        match page.push(&[0u8; PAGE_SIZE]) {
            Err(StoreError::RecordTooLarge { requested, .. }) => {
                assert_eq!(requested, PAGE_SIZE)
            }
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
        // Existing records are intact.
        let view = page.as_ref();
        assert_eq!(view.len(), pushed);
        assert!(view.iter().all(|r| r == record));
    }

    #[test]
    fn clear_resets() {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut page = SlottedPageMut::new(&mut buf);
        page.push(b"data").unwrap();
        page.clear();
        assert!(page.as_ref().is_empty());
        page.push(b"fresh").unwrap();
        assert_eq!(page.as_ref().get(0).unwrap(), b"fresh");
    }

    #[test]
    fn free_space_decreases_monotonically() {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut page = SlottedPageMut::new(&mut buf);
        let mut last = page.as_ref().free_space();
        for _ in 0..10 {
            page.push(&[0u8; 64]).unwrap();
            let now = page.as_ref().free_space();
            assert!(now < last);
            last = now;
        }
    }
}
