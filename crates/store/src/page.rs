//! Page constants and identifiers.

/// Size of a disk page in bytes.
///
/// The paper compiles SHORE with 8 KB pages (§4.1); every node of every
/// index in this workspace occupies exactly one such page.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within a [`crate::DiskBackend`].
///
/// 32 bits address 32 TiB of 8 KiB pages — far beyond any workload here —
/// while keeping on-page child pointers compact.
pub type PageId = u32;

/// Sentinel for "no page" (e.g. absent child pointers in serialized nodes).
pub const INVALID_PAGE: PageId = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(PAGE_SIZE, 8192);
        assert_ne!(INVALID_PAGE, 0);
    }
}
