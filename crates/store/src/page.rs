//! Page constants and identifiers.

/// Size of a disk page in bytes.
///
/// The paper compiles SHORE with 8 KB pages (§4.1); every node of every
/// index in this workspace occupies exactly one such page.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within a [`crate::DiskBackend`].
///
/// 32 bits address 32 TiB of 8 KiB pages — far beyond any workload here —
/// while keeping on-page child pointers compact.
pub type PageId = u32;

/// Sentinel for "no page" (e.g. absent child pointers in serialized nodes).
pub const INVALID_PAGE: PageId = u32::MAX;

/// Bytes of the per-frame integrity trailer: a CRC32 of the page payload
/// plus a seal magic (see [`crate::checksum`]).
pub const PAGE_TRAILER: usize = 8;

/// Size of a physical frame as stored by a [`crate::DiskBackend`]:
/// the [`PAGE_SIZE`] client payload followed by the [`PAGE_TRAILER`].
///
/// Clients of the buffer pool only ever see [`PAGE_SIZE`] bytes; the
/// trailer is sealed on physical write and verified on physical read at
/// the pool boundary.
pub const FRAME_SIZE: usize = PAGE_SIZE + PAGE_TRAILER;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(PAGE_SIZE, 8192);
        assert_eq!(FRAME_SIZE, PAGE_SIZE + PAGE_TRAILER);
        assert_ne!(INVALID_PAGE, 0);
    }
}
