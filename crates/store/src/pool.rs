//! The buffer pool: a fixed budget of in-memory page frames managed with
//! exact LRU replacement.
//!
//! Every page access made by the indices and join algorithms goes through
//! [`BufferPool::with_page`] / [`BufferPool::with_page_mut`]; the pool
//! charges a logical read per access and a physical read per miss. The
//! default experimental configuration is the paper's: 64 frames × 8 KiB =
//! 512 KiB (§4.1). [`BufferPool::set_capacity`] changes the budget at run
//! time, which is how the Figure 3(b) buffer-size sweep is driven.

use crate::lru::LruList;
use crate::{DiskBackend, IoSnapshot, IoStats, PageId, Result, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default pool capacity: 64 pages = 512 KiB, the paper's configuration.
pub const DEFAULT_CAPACITY: usize = 64;

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<PageId, u32>,
    lru: LruList,
    free: Vec<u32>,
    capacity: usize,
}

/// An LRU buffer pool over a [`DiskBackend`].
///
/// The pool is internally synchronized and meant to be shared (e.g. in an
/// `Arc`) between the indices of both join inputs, so that — exactly as in
/// the paper's setup — the two trees compete for the same 512 KiB of
/// memory.
///
/// # Re-entrancy
///
/// The closures passed to [`with_page`](Self::with_page) and
/// [`with_page_mut`](Self::with_page_mut) run while the pool lock is held
/// and must not call back into the pool; decode what you need and return.
pub struct BufferPool {
    disk: Box<dyn DiskBackend>,
    inner: Mutex<Inner>,
    stats: IoStats,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames over `disk`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(disk: impl DiskBackend, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk: Box::new(disk),
            inner: Mutex::new(Inner {
                frames: Vec::new(),
                map: HashMap::new(),
                lru: LruList::new(capacity),
                free: Vec::new(),
                capacity,
            }),
            stats: IoStats::new(),
        }
    }

    /// Creates a pool with the paper's default 64-frame (512 KiB) capacity.
    pub fn with_default_capacity(disk: impl DiskBackend) -> Self {
        Self::new(disk, DEFAULT_CAPACITY)
    }

    /// Current capacity in frames.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Resizes the pool to `capacity` frames, evicting (and flushing) the
    /// least-recently-used pages if shrinking.
    pub fn set_capacity(&self, capacity: usize) -> Result<()> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let mut inner = self.inner.lock();
        inner.capacity = capacity;
        let target = capacity.max(inner.frames.len());
        inner.lru.grow_to(target);
        while inner.lru.len() > capacity {
            self.evict_one(&mut inner)?;
        }
        Ok(())
    }

    /// Reads page `id` and passes its bytes to `f`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let frame = self.fetch(&mut inner, id)?;
        Ok(f(&inner.frames[frame as usize].data))
    }

    /// Reads page `id`, passes its bytes mutably to `f`, and marks the page
    /// dirty. The modification reaches disk on eviction or
    /// [`flush_all`](Self::flush_all).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let frame = self.fetch(&mut inner, id)?;
        let frame = &mut inner.frames[frame as usize];
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Allocates a fresh zeroed page, resident in the pool and marked dirty
    /// (it will be written to disk when evicted or flushed). Returns its id.
    pub fn allocate(&self) -> Result<PageId> {
        let id = self.disk.allocate()?;
        let mut inner = self.inner.lock();
        let frame = self.acquire_frame(&mut inner)?;
        {
            let fr = &mut inner.frames[frame as usize];
            fr.page = id;
            fr.data.fill(0);
            fr.dirty = true;
        }
        inner.map.insert(id, frame);
        inner.lru.touch(frame);
        Ok(id)
    }

    /// Writes every dirty resident page back to disk (pages stay resident).
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter_mut() {
            if frame.dirty && frame.page != crate::INVALID_PAGE {
                self.disk.write_page(frame.page, &frame.data)?;
                self.stats.record_physical_write();
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drops every resident page (flushing dirty ones), leaving the pool
    /// cold. Benchmarks call this between phases so each algorithm starts
    /// with an empty cache.
    pub fn clear(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        while inner.lru.len() > 0 {
            self.evict_one(&mut inner)?;
        }
        Ok(())
    }

    /// Number of pages allocated on the underlying disk.
    pub fn num_pages(&self) -> PageId {
        self.disk.num_pages()
    }

    /// Point-in-time I/O counters.
    pub fn stats(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Locates (or faults in) page `id`, returning its frame index.
    fn fetch(&self, inner: &mut Inner, id: PageId) -> Result<u32> {
        self.stats.record_logical_read();
        if let Some(&frame) = inner.map.get(&id) {
            inner.lru.touch(frame);
            return Ok(frame);
        }
        let frame = self.acquire_frame(inner)?;
        self.disk
            .read_page(id, &mut inner.frames[frame as usize].data)?;
        self.stats.record_physical_read();
        inner.frames[frame as usize].page = id;
        inner.frames[frame as usize].dirty = false;
        inner.map.insert(id, frame);
        inner.lru.touch(frame);
        Ok(frame)
    }

    /// Finds a free frame for a page about to become resident, evicting
    /// the LRU page first when the pool is at capacity.
    ///
    /// Residency is governed by `lru.len()`, not by the size of the frame
    /// vector: after [`BufferPool::set_capacity`] shrinks the pool, the
    /// old frames sit on the free list, and reusing them must not let the
    /// resident count exceed the new capacity.
    fn acquire_frame(&self, inner: &mut Inner) -> Result<u32> {
        if inner.lru.len() >= inner.capacity {
            self.evict_one(inner)?;
        }
        if let Some(frame) = inner.free.pop() {
            return Ok(frame);
        }
        debug_assert!(inner.frames.len() < inner.capacity);
        let idx = inner.frames.len() as u32;
        inner.frames.push(Frame {
            page: crate::INVALID_PAGE,
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            dirty: false,
        });
        inner.lru.grow_to(inner.frames.len());
        Ok(idx)
    }

    /// Evicts the least-recently-used page, flushing it if dirty.
    fn evict_one(&self, inner: &mut Inner) -> Result<()> {
        let victim = inner
            .lru
            .pop_lru()
            .expect("evict_one called on empty pool");
        let frame = &mut inner.frames[victim as usize];
        if frame.dirty {
            self.disk.write_page(frame.page, &frame.data)?;
            self.stats.record_physical_write();
            frame.dirty = false;
        }
        inner.map.remove(&frame.page);
        frame.page = crate::INVALID_PAGE;
        inner.free.push(victim);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(MemDisk::new(), cap)
    }

    #[test]
    fn allocate_then_read_hits_cache() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 42).unwrap();
        let v = p.with_page(id, |b| b[0]).unwrap();
        assert_eq!(v, 42);
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 0, "page never left the pool");
    }

    #[test]
    fn eviction_writes_dirty_pages_and_rereads_them() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |buf| buf[0] = 1).unwrap();
        p.with_page_mut(b, |buf| buf[0] = 2).unwrap();
        // Third page evicts `a` (LRU).
        let c = p.allocate().unwrap();
        p.with_page_mut(c, |buf| buf[0] = 3).unwrap();
        assert!(p.stats().physical_writes >= 1);
        // Reading `a` again faults it back in with its data intact.
        let before = p.stats().physical_reads;
        let v = p.with_page(a, |buf| buf[0]).unwrap();
        assert_eq!(v, 1);
        assert_eq!(p.stats().physical_reads, before + 1);
    }

    #[test]
    fn lru_keeps_hot_page_resident() {
        let p = pool(2);
        let hot = p.allocate().unwrap();
        let cold = p.allocate().unwrap();
        p.with_page(hot, |_| ()).unwrap(); // hot is MRU
        let extra = p.allocate().unwrap(); // must evict `cold`
        p.reset_stats();
        p.with_page(hot, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 0, "hot page stayed resident");
        p.with_page(cold, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 1, "cold page was evicted");
        let _ = extra;
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = MemDisk::new();
        // Keep a raw handle by allocating through the pool, flushing, then
        // reading via a second pool over the same disk... MemDisk is moved
        // into the pool, so instead verify via eviction-free readback:
        let p = BufferPool::new(disk, 4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[7] = 9).unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.stats().physical_writes, 1);
        // Clearing drops the frame; the next read faults from disk and must
        // see the flushed data.
        p.clear().unwrap();
        assert_eq!(p.with_page(id, |b| b[7]).unwrap(), 9);
    }

    #[test]
    fn clear_flushes_dirty_pages() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 5).unwrap();
        p.clear().unwrap();
        assert!(p.stats().physical_writes >= 1);
        assert_eq!(p.with_page(id, |b| b[0]).unwrap(), 5);
    }

    #[test]
    fn shrink_capacity_evicts_excess() {
        let p = pool(8);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        p.set_capacity(2).unwrap();
        assert_eq!(p.capacity(), 2);
        p.reset_stats();
        // Only the two most recently used pages can still be resident.
        let mut faults = 0;
        for &id in &ids {
            let before = p.stats().physical_reads;
            p.with_page(id, |_| ()).unwrap();
            if p.stats().physical_reads > before {
                faults += 1;
            }
        }
        assert!(faults >= 6, "expected at least 6 faults, got {faults}");
    }

    #[test]
    fn grow_capacity_reduces_faults() {
        let run = |cap: usize| -> u64 {
            let p = pool(cap);
            let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
            p.reset_stats();
            // Three cyclic sweeps: classic LRU-thrash workload.
            for _ in 0..3 {
                for &id in &ids {
                    p.with_page(id, |_| ()).unwrap();
                }
            }
            p.stats().physical_reads
        };
        assert!(run(4) > run(16), "bigger pool must fault less");
        assert_eq!(run(16), 0, "pool holding everything never faults");
    }

    #[test]
    fn shrunk_pool_enforces_new_capacity() {
        // Regression: shrinking used to leave old frames on the free
        // list, silently keeping the old effective capacity.
        let p = pool(1024);
        let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
        p.set_capacity(4).unwrap();
        p.clear().unwrap();
        p.reset_stats();
        // Three cyclic sweeps over 16 pages with 4 frames: pure thrash,
        // every access must miss.
        for _ in 0..3 {
            for &id in &ids {
                p.with_page(id, |_| ()).unwrap();
            }
        }
        assert_eq!(
            p.stats().physical_reads,
            48,
            "shrunken pool must behave exactly like a fresh 4-frame pool"
        );
    }

    #[test]
    fn logical_vs_physical_accounting() {
        let p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.reset_stats();
        // Alternating reads with a single frame: every access is a miss.
        for _ in 0..5 {
            p.with_page(a, |_| ()).unwrap();
            p.with_page(b, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.physical_reads, 10);
        assert_eq!(s.hit_rate(), 0.0);
    }
}
