//! The buffer pool: a fixed budget of in-memory page frames managed with
//! exact LRU replacement, lock-striped into shards for concurrent readers.
//!
//! Every page access made by the indices and join algorithms goes through
//! [`BufferPool::with_page`] / [`BufferPool::with_page_mut`]; the pool
//! charges a logical read per access and a physical read per miss. The
//! default experimental configuration is the paper's: 64 frames × 8 KiB =
//! 512 KiB (§4.1). [`BufferPool::set_capacity`] changes the budget at run
//! time, which is how the Figure 3(b) buffer-size sweep is driven.
//!
//! # Sharding
//!
//! The paper runs single-threaded against SHORE's one buffer pool; our
//! `mba_parallel` extension fans the traversal across cores, and a single
//! pool mutex serializes every page touch. The pool is therefore striped
//! into [`DEFAULT_SHARDS`] sub-pools (see [`BufferPool::with_shards`]),
//! each an exact-LRU pool over the pages with `page % shards == i`, each
//! behind its own lock with its own counters. Aggregate behavior remains
//! exact LRU *per stripe*; with striping by page id the hot set spreads
//! uniformly, so the global miss count matches a single LRU closely (and
//! exactly, in the common benchmark case of a pool sized to its working
//! set). Construct with one shard to recover the paper's single exact LRU.
//!
//! Physical reads happen *outside* the shard lock: a missing page reserves
//! a pinned frame, releases the lock, performs the disk read + CRC check
//! into a private buffer, and re-locks to publish the frame. Concurrent
//! requests for a page being loaded wait (yielding) for the loader;
//! concurrent requests for other pages of the same shard proceed, evicting
//! around the pinned frame. When every frame of a shard is pinned by
//! in-flight loads the shard temporarily over-provisions rather than
//! deadlock, and returns to budget as subsequent accesses evict.
//!
//! The pool is also the integrity boundary: frames are sealed with a CRC32
//! trailer ([`crate::checksum`]) on every physical write and verified on
//! every physical read, so a torn or bit-rotted frame surfaces as
//! [`StoreError::Corrupt`] naming the page instead of reaching a codec.
//! Transient backend failures are retried under a [`RetryPolicy`]; both
//! retries and checksum failures are counted in [`crate::IoStats`].

use crate::checksum::{seal_frame, verify_frame};
use crate::lru::LruList;
use crate::{DiskBackend, IoSnapshot, IoStats, PageId, Result, StoreError, FRAME_SIZE, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

/// Default pool capacity: 64 pages = 512 KiB, the paper's configuration.
pub const DEFAULT_CAPACITY: usize = 64;

/// Default number of lock stripes.
///
/// A fixed constant (clamped to the frame budget) rather than a
/// core-count-derived value, so page→shard placement — and with it every
/// deterministic eviction/fault-injection schedule — is identical on every
/// machine.
pub const DEFAULT_SHARDS: usize = 8;

/// The `what` string of the [`StoreError::Corrupt`] returned when an
/// access is rejected because its page sits in the quarantine set, so
/// callers can tell a fast-failed quarantined touch apart from a fresh
/// checksum failure.
pub const QUARANTINED: &str = "page is quarantined";

/// How the pool reacts to transient physical-I/O failures (injected
/// transient faults, interrupted/timed-out OS calls).
///
/// Each failed attempt is retried up to `max_attempts` total attempts,
/// sleeping `backoff × attempt` between tries (linear backoff; the default
/// is no sleep, which keeps fault-sweep tests fast). Permanent errors —
/// out-of-bounds, corruption, injected permanent faults — are never
/// retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (minimum 1).
    pub max_attempts: u32,
    /// Base sleep between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

/// Uniform page-access interface over the buffer pool and the structures
/// that wrap it (shared handles, [`crate::Txn`] side-buffers).
///
/// The node codecs and index write paths are generic over this trait, so
/// the same code serves direct pool access and buffered transactional
/// access.
pub trait PageStore {
    /// Reads page `id` and passes its [`PAGE_SIZE`] bytes to `f`.
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R>;

    /// Reads page `id`, passes its bytes mutably to `f`, and records the
    /// modification (dirty frame or transaction write-set entry).
    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R>;

    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> Result<PageId>;
}

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    /// Pin count: a pinned frame is never an eviction candidate (it is
    /// kept out of the LRU list). Today the only pinner is the miss path,
    /// which holds one pin across its out-of-lock physical read.
    pins: u32,
    /// `false` while the owning thread is still reading the page from
    /// disk; other threads requesting the same page wait for this flag.
    loaded: bool,
    /// Set while the frame holds a page the prefetcher loaded that no
    /// demand access has claimed yet. The first demand touch clears it (a
    /// prefetch hit); eviction while still set is a wasted prefetch.
    prefetched: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            page: crate::INVALID_PAGE,
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            dirty: false,
            pins: 0,
            loaded: false,
            prefetched: false,
        }
    }
}

/// Tuning knobs for the pool's readahead (see [`BufferPool::prefetch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Ceiling on prefetched-but-not-yet-demanded resident frames. While
    /// at the ceiling, new hints wait in the readahead queue. Keep this
    /// well below the pool capacity: every in-flight frame is one frame
    /// the demand working set cannot use.
    pub max_inflight: usize,
    /// Upper bound on pages per physical `read_batch` transfer.
    pub batch: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            max_inflight: 16,
            batch: 8,
        }
    }
}

/// A queued readahead hint. Ordered by descending priority, then FIFO —
/// the traversal assigns higher priorities to deeper pages, which the
/// best-first heaps consume soonest.
#[derive(PartialEq, Eq)]
struct Hint {
    priority: u32,
    seq: u64,
    page: PageId,
}

impl Ord for Hint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: larger priority wins; among equals, smaller seq
        // (earlier submission) wins.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Hint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Handshake between the pool and its pipelined readahead worker (see
/// [`BufferPool::enable_prefetch_pipelined`]). `std` primitives rather
/// than `parking_lot` because the worker needs a condvar.
struct PrefetchSignal {
    state: StdMutex<PrefetchWorkerState>,
    cond: Condvar,
}

#[derive(Default)]
struct PrefetchWorkerState {
    /// Bumped on every wake-worthy event: new hints, a claimed / wasted /
    /// rewritten speculative frame freeing in-flight budget, shutdown.
    wakeups: u64,
    /// The `wakeups` value the worker has fully pumped against; quiescing
    /// waits for `idle && acked == wakeups`.
    acked: u64,
    /// Worker parked between passes.
    idle: bool,
    shutdown: bool,
}

impl PrefetchSignal {
    fn new() -> Self {
        PrefetchSignal {
            state: StdMutex::new(PrefetchWorkerState::default()),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PrefetchWorkerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct ShardInner {
    frames: Vec<Frame>,
    map: HashMap<PageId, u32>,
    lru: LruList,
    free: Vec<u32>,
    capacity: usize,
    /// Staging buffer for physical writes: payload + checksum trailer.
    scratch: Box<[u8]>,
}

struct Shard {
    inner: Mutex<ShardInner>,
    stats: IoStats,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            inner: Mutex::new(ShardInner {
                frames: Vec::new(),
                map: HashMap::new(),
                lru: LruList::new(capacity),
                free: Vec::new(),
                capacity,
                scratch: vec![0u8; FRAME_SIZE].into_boxed_slice(),
            }),
            stats: IoStats::new(),
        }
    }

    /// Locks the shard, counting the acquisition as contended when the
    /// lock was already held.
    fn lock(&self) -> parking_lot::MutexGuard<'_, ShardInner> {
        match self.inner.try_lock() {
            Some(guard) => guard,
            None => {
                self.stats.record_lock_contention();
                self.inner.lock()
            }
        }
    }
}

/// Splits `total` frames across `shards` stripes as evenly as possible,
/// giving every stripe at least one frame.
fn shard_capacities(total: usize, shards: usize) -> Vec<usize> {
    let base = total / shards;
    let rem = total % shards;
    (0..shards)
        .map(|i| (base + usize::from(i < rem)).max(1))
        .collect()
}

/// An LRU buffer pool over a [`DiskBackend`], lock-striped into shards.
///
/// The pool is internally synchronized and meant to be shared (e.g. in an
/// `Arc`) between the indices of both join inputs, so that — exactly as in
/// the paper's setup — the two trees compete for the same 512 KiB of
/// memory.
///
/// # Re-entrancy
///
/// The closures passed to [`with_page`](Self::with_page) and
/// [`with_page_mut`](Self::with_page_mut) run while a shard lock is held
/// and must not call back into the same pool; decode what you need and
/// return. In debug builds a re-entrant call panics with a diagnostic
/// instead of deadlocking on the shard lock.
pub struct BufferPool {
    disk: Box<dyn DiskBackend>,
    shards: Box<[Shard]>,
    /// Requested total frame budget (the per-shard budgets derive from it).
    capacity: AtomicUsize,
    /// Pool-level counters not attributable to one shard (allocation
    /// retries); folded into [`stats`](Self::stats) with the shard counters.
    stats: IoStats,
    retry: Mutex<RetryPolicy>,
    /// Pages whose frames failed CRC verification: further touches fail
    /// fast with [`StoreError::Corrupt`] (`what == `[`QUARANTINED`])
    /// instead of re-reading known-bad media. `overwrite_page` heals —
    /// a full-frame rewrite (the journal-recovery path) lifts the
    /// quarantine.
    quarantine: Mutex<HashSet<PageId>>,
    /// Fast-path flag: `false` means the set is empty and reads skip the
    /// quarantine lock entirely, keeping the fault-free path at one
    /// relaxed load.
    quarantine_nonempty: AtomicBool,
    /// Readahead enable flag; `false` (the default) makes
    /// [`prefetch`](Self::prefetch) a no-op costing one relaxed load.
    prefetch_on: AtomicBool,
    prefetch_cfg: Mutex<PrefetchConfig>,
    /// Pending readahead hints, highest priority first.
    prefetch_queue: Mutex<BinaryHeap<Hint>>,
    /// Submission counter: FIFO tie-break among equal-priority hints.
    prefetch_seq: AtomicU64,
    /// Resident prefetched frames not yet claimed by a demand access;
    /// bounded by [`PrefetchConfig::max_inflight`].
    prefetch_inflight: AtomicUsize,
    /// Wake/park handshake with the pipelined readahead worker.
    prefetch_signal: Arc<PrefetchSignal>,
    /// `true` once [`enable_prefetch_pipelined`] has spawned the worker;
    /// routes hints (and budget-freed notifications) to it instead of the
    /// inline pump.
    ///
    /// [`enable_prefetch_pipelined`]: BufferPool::enable_prefetch_pipelined
    prefetch_bg: AtomicBool,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames over `disk`, striped into
    /// [`DEFAULT_SHARDS`] shards (fewer when `capacity` is smaller).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(disk: impl DiskBackend, capacity: usize) -> Self {
        let shards = DEFAULT_SHARDS.min(capacity.max(1));
        Self::with_shards(disk, capacity, shards)
    }

    /// Creates a pool with `capacity` frames striped into exactly `shards`
    /// lock stripes (clamped to `capacity`, so every stripe owns at least
    /// one frame). One shard reproduces the paper's single exact-LRU pool.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    pub fn with_shards(disk: impl DiskBackend, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        assert!(shards > 0, "buffer pool needs at least one shard");
        let shards = shards.min(capacity);
        let caps = shard_capacities(capacity, shards);
        BufferPool {
            disk: Box::new(disk),
            shards: caps.into_iter().map(Shard::new).collect(),
            capacity: AtomicUsize::new(capacity),
            stats: IoStats::new(),
            retry: Mutex::new(RetryPolicy::default()),
            quarantine: Mutex::new(HashSet::new()),
            quarantine_nonempty: AtomicBool::new(false),
            prefetch_on: AtomicBool::new(false),
            prefetch_cfg: Mutex::new(PrefetchConfig::default()),
            prefetch_queue: Mutex::new(BinaryHeap::new()),
            prefetch_seq: AtomicU64::new(0),
            prefetch_inflight: AtomicUsize::new(0),
            prefetch_signal: Arc::new(PrefetchSignal::new()),
            prefetch_bg: AtomicBool::new(false),
        }
    }

    /// Creates a pool with the paper's default 64-frame (512 KiB) capacity.
    pub fn with_default_capacity(disk: impl DiskBackend) -> Self {
        Self::new(disk, DEFAULT_CAPACITY)
    }

    /// Current requested capacity in frames.
    ///
    /// With more shards than frames-per-shard rounding allows, the
    /// *enforced* budget is `max(capacity, num_shards)` — every shard keeps
    /// at least one frame.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, id: PageId) -> &Shard {
        &self.shards[id as usize % self.shards.len()]
    }

    /// Whether readahead is enabled (see [`prefetch`](Self::prefetch)).
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch_on.load(Ordering::Relaxed)
    }

    /// Enables readahead with the given tuning. The pump runs *inline*:
    /// each [`prefetch`](Self::prefetch) call drains the queue on the
    /// calling thread, which keeps the physical-read schedule a pure
    /// function of the logical op sequence (the checker's fault classes
    /// rely on this). For readahead that overlaps I/O with compute, see
    /// [`enable_prefetch_pipelined`](Self::enable_prefetch_pipelined).
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight` or `batch` is zero.
    pub fn enable_prefetch(&self, cfg: PrefetchConfig) {
        assert!(cfg.max_inflight > 0, "prefetch needs an in-flight budget");
        assert!(cfg.batch > 0, "prefetch needs a batch size");
        *self.prefetch_cfg.lock() = cfg;
        self.prefetch_on.store(true, Ordering::Relaxed);
    }

    /// Enables *pipelined* readahead: a dedicated worker thread drains the
    /// hint queue through the same reserve / batch-read / publish pump as
    /// the inline mode, so speculative disk reads overlap with the query
    /// thread's compute instead of serializing in front of it. The worker
    /// parks when the queue is dry, the in-flight ceiling is reached, or
    /// every queued hint is stalled behind an unclaimed frame, and wakes
    /// when new hints arrive or a claim/eviction frees budget.
    ///
    /// Everything observable to a query is unchanged from the inline mode:
    /// results, logical reads, and hit/claim accounting are identical —
    /// only the *wall-clock placement* of physical reads moves (and with
    /// it, run-to-run physical read counts may vary, since the worker
    /// races demand misses for cold pages). A demand access that lands on
    /// a page mid-prefetch waits for the in-flight read instead of issuing
    /// its own — that wait is the pipeline's win: part of a batched seek
    /// instead of a dedicated one.
    ///
    /// The worker lives until the pool drops; [`disable_prefetch`]
    /// (Self::disable_prefetch) parks it after finishing the in-flight
    /// batch. Requires the pool behind `Arc` so the worker can hold a
    /// `Weak` handle.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight` or `batch` is zero.
    pub fn enable_prefetch_pipelined(self: &Arc<Self>, cfg: PrefetchConfig) {
        assert!(cfg.max_inflight > 0, "prefetch needs an in-flight budget");
        assert!(cfg.batch > 0, "prefetch needs a batch size");
        *self.prefetch_cfg.lock() = cfg;
        self.spawn_prefetch_worker();
        self.prefetch_on.store(true, Ordering::Relaxed);
    }

    /// Disables readahead, drops every queued hint, and — in pipelined
    /// mode — waits for the worker to finish its in-flight batch and park,
    /// so the caller can safely resize or clear the pool and read stable
    /// counters afterwards. Frames already prefetched stay resident and
    /// are claimed or evicted normally.
    pub fn disable_prefetch(&self) {
        self.prefetch_on.store(false, Ordering::Relaxed);
        self.prefetch_queue.lock().clear();
        self.prefetch_quiesce();
    }

    /// Blocks until the pipelined readahead worker (if any) has consumed
    /// every wakeup and parked: afterwards no speculative read is in
    /// flight and the prefetch counters are stable. Queued hints that are
    /// stalled behind unclaimed frames remain queued. A no-op in inline
    /// mode.
    pub fn prefetch_quiesce(&self) {
        if !self.prefetch_bg.load(Ordering::Relaxed) {
            return;
        }
        let sig = &self.prefetch_signal;
        let mut st = sig.lock();
        while !(st.idle && st.acked == st.wakeups) {
            st = sig
                .cond
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Wakes the pipelined worker (new hints, or in-flight budget freed by
    /// a claim / waste / rewrite). One relaxed load when no worker exists.
    fn notify_prefetch_worker(&self) {
        if !self.prefetch_bg.load(Ordering::Relaxed) {
            return;
        }
        let mut st = self.prefetch_signal.lock();
        st.wakeups += 1;
        self.prefetch_signal.cond.notify_all();
    }

    /// Spawns the single readahead worker (idempotent). The worker holds
    /// only a `Weak` pool handle while parked, so dropping the last
    /// external `Arc` still drops the pool: [`Drop`] flags shutdown and
    /// the worker exits without touching the freed pool. Mid-pass the
    /// worker holds a strong handle, which simply defers the drop until
    /// the batch completes.
    fn spawn_prefetch_worker(self: &Arc<Self>) {
        if self.prefetch_bg.swap(true, Ordering::SeqCst) {
            return;
        }
        let weak = Arc::downgrade(self);
        let sig = Arc::clone(&self.prefetch_signal);
        std::thread::Builder::new()
            .name("ann-prefetch".into())
            .spawn(move || {
                let mut seen = 0u64;
                loop {
                    {
                        let mut st = sig.lock();
                        loop {
                            if st.shutdown {
                                st.idle = true;
                                sig.cond.notify_all();
                                return;
                            }
                            if st.wakeups != seen {
                                seen = st.wakeups;
                                break;
                            }
                            st.idle = true;
                            sig.cond.notify_all();
                            st = sig
                                .cond
                                .wait(st)
                                .unwrap_or_else(|e| e.into_inner());
                        }
                        st.idle = false;
                    }
                    let Some(pool) = weak.upgrade() else { return };
                    if pool.prefetch_enabled() {
                        let cfg = *pool.prefetch_cfg.lock();
                        pool.pump_prefetch(&cfg);
                    }
                    drop(pool);
                    let mut st = sig.lock();
                    st.acked = st.acked.max(seen);
                    sig.cond.notify_all();
                }
            })
            .expect("spawn readahead worker");
    }

    /// Submits readahead hints — `(page, priority)` pairs naming pages a
    /// traversal has decided to visit soon — and pumps the queue.
    ///
    /// Higher `priority` loads first; among equal priorities, submission
    /// order wins. Under [`enable_prefetch`](Self::enable_prefetch) the
    /// pump runs **inline on the calling thread**; under
    /// [`enable_prefetch_pipelined`](Self::enable_prefetch_pipelined) this
    /// call only enqueues and wakes the worker, which runs the same pump
    /// concurrently. Either way the pump reserves frames exactly like the
    /// demand miss path (so the single-fault guarantee and waiter protocol
    /// are unchanged), reads up to [`PrefetchConfig::batch`] pages per
    /// [`DiskBackend::read_batch`] call with the ids sorted ascending (so
    /// sequential leaf runs coalesce into large transfers), and publishes
    /// the frames *unpinned* at the cold end of their shard's LRU list.
    /// Readahead never changes logical-read counts: it only moves physical
    /// reads earlier. Hints for resident, quarantined, or out-of-bounds
    /// pages are dropped; read failures release the reserved frames
    /// silently, leaving the error for the demand access (which retries
    /// under the [`RetryPolicy`]).
    ///
    /// The pump is self-limiting: a hint whose frame reservation would
    /// evict a prefetched frame no demand access has claimed yet is
    /// *deferred* back to the queue rather than churning the readahead
    /// window, so speculative frames die only to demand pressure (the
    /// scan-resistance path) — never to more speculation.
    ///
    /// A no-op (one relaxed load) unless enabled with
    /// [`enable_prefetch`](Self::enable_prefetch). Calling with an empty
    /// slice just pumps previously queued hints.
    pub fn prefetch(&self, hints: &[(PageId, u32)]) {
        if !self.prefetch_enabled() {
            return;
        }
        self.assert_not_reentrant();
        let cfg = *self.prefetch_cfg.lock();
        if !hints.is_empty() {
            let mut queue = self.prefetch_queue.lock();
            // Bound the backlog: hints are advisory, so once the queue is
            // deep enough to keep the pump busy, later ones are dropped.
            let backlog = cfg.max_inflight.saturating_mul(8).max(cfg.batch);
            for &(page, priority) in hints {
                if queue.len() >= backlog {
                    break;
                }
                queue.push(Hint {
                    priority,
                    seq: self.prefetch_seq.fetch_add(1, Ordering::Relaxed),
                    page,
                });
            }
        }
        if self.prefetch_bg.load(Ordering::Relaxed) {
            self.notify_prefetch_worker();
        } else {
            self.pump_prefetch(&cfg);
        }
    }

    /// Prefetched frames currently resident and unclaimed.
    pub fn prefetch_inflight(&self) -> usize {
        self.prefetch_inflight.load(Ordering::Relaxed)
    }

    /// Drains the hint queue into frames: reserve, batch-read, publish.
    /// Stops when the queue is dry, the in-flight ceiling is reached, or
    /// a read fails.
    fn pump_prefetch(&self, cfg: &PrefetchConfig) {
        let num_pages = self.disk.num_pages();
        loop {
            let inflight = self.prefetch_inflight.load(Ordering::Relaxed);
            let budget = cfg.max_inflight.saturating_sub(inflight).min(cfg.batch);
            if budget == 0 {
                return;
            }
            // Reserve a pinned, not-yet-loaded frame per queued page, the
            // same protocol as the demand miss path (waiters yield on the
            // `loaded` flag).
            let mut reserved: Vec<(PageId, u32)> = Vec::with_capacity(budget);
            let mut deferred: Vec<Hint> = Vec::new();
            while reserved.len() < budget {
                let Some(hint) = self.prefetch_queue.lock().pop() else {
                    break;
                };
                let id = hint.page;
                if id >= num_pages || self.is_quarantined(id) {
                    continue;
                }
                let shard = self.shard_of(id);
                let mut inner = shard.lock();
                if inner.map.contains_key(&id) {
                    continue; // resident or already loading
                }
                // Never cannibalize the readahead window: when making room
                // would evict a prefetched frame no demand access has
                // claimed yet, defer the hint until a claim or a demand
                // miss frees the cold end. Without this, a deep hint
                // stream churns the window — each reservation evicts (and
                // wastes) the oldest speculative frame to load the next.
                if inner.map.len() >= inner.capacity
                    && inner
                        .lru
                        .peek_lru()
                        .is_some_and(|v| inner.frames[v as usize].prefetched)
                {
                    drop(inner);
                    deferred.push(hint);
                    continue;
                }
                let Ok(fi) = self.acquire_frame(shard, &mut inner) else {
                    continue; // eviction write failed; drop the hint
                };
                {
                    let fr = &mut inner.frames[fi as usize];
                    fr.page = id;
                    fr.dirty = false;
                    fr.loaded = false;
                    fr.prefetched = false;
                    fr.pins = 1;
                }
                inner.map.insert(id, fi);
                drop(inner);
                reserved.push((id, fi));
            }
            if !deferred.is_empty() {
                // Back into the queue with their original sequence numbers:
                // deferral is a stall, not a reorder.
                let mut queue = self.prefetch_queue.lock();
                for hint in deferred {
                    queue.push(hint);
                }
            }
            if reserved.is_empty() {
                return;
            }
            // Ascending page order maximizes run coalescing in read_batch.
            reserved.sort_unstable_by_key(|&(id, _)| id);
            let ids: Vec<PageId> = reserved.iter().map(|&(id, _)| id).collect();
            let mut buf = vec![0u8; reserved.len() * FRAME_SIZE];
            if self.disk.read_batch(&ids, &mut buf).is_err() {
                // Advisory read: hand every frame back and let the demand
                // access surface the failure (with retries).
                for &(id, fi) in &reserved {
                    self.release_reserved(id, fi);
                }
                return;
            }
            for (i, &(id, fi)) in reserved.iter().enumerate() {
                let frame = &buf[i * FRAME_SIZE..(i + 1) * FRAME_SIZE];
                let shard = self.shard_of(id);
                if verify_frame(frame).is_err() {
                    shard.stats.record_checksum_failure();
                    if self.quarantine.lock().insert(id) {
                        shard.stats.record_quarantined_page();
                        self.quarantine_nonempty.store(true, Ordering::Release);
                    }
                    self.release_reserved(id, fi);
                    continue;
                }
                let mut inner = shard.lock();
                let fr = &mut inner.frames[fi as usize];
                debug_assert_eq!(fr.page, id, "pinned frame was stolen");
                shard.stats.record_physical_read();
                shard.stats.record_prefetch_issued();
                fr.data.copy_from_slice(&frame[..PAGE_SIZE]);
                fr.loaded = true;
                fr.prefetched = true;
                fr.pins -= 1;
                if fr.pins == 0 {
                    inner.lru.push_cold(fi);
                }
                self.prefetch_inflight.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Hands back a frame the prefetcher reserved but could not fill.
    fn release_reserved(&self, id: PageId, fi: u32) {
        let shard = self.shard_of(id);
        let mut inner = shard.lock();
        let fr = &mut inner.frames[fi as usize];
        debug_assert_eq!(fr.page, id, "pinned frame was stolen");
        fr.page = crate::INVALID_PAGE;
        fr.pins = 0;
        fr.loaded = false;
        inner.map.remove(&id);
        inner.free.push(fi);
    }

    /// Current transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Replaces the transient-fault retry policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Adds `id` to the quarantine set: until healed (see
    /// [`overwrite_page`](Self::overwrite_page)) or
    /// [`clear_quarantine`](Self::clear_quarantine)d, every read of the
    /// page fails fast with [`StoreError::Corrupt`] whose `what` is
    /// [`QUARANTINED`]. The pool quarantines automatically when a frame
    /// fails CRC verification; this entry point lets higher layers
    /// quarantine pages whose *decoded* contents proved corrupt.
    pub fn quarantine(&self, id: PageId) {
        if self.quarantine.lock().insert(id) {
            self.stats.record_quarantined_page();
            self.quarantine_nonempty.store(true, Ordering::Release);
        }
    }

    /// Whether `id` is currently quarantined.
    pub fn is_quarantined(&self, id: PageId) -> bool {
        self.quarantine_nonempty.load(Ordering::Acquire) && self.quarantine.lock().contains(&id)
    }

    /// The currently quarantined pages, in ascending order.
    pub fn quarantined_pages(&self) -> Vec<PageId> {
        let mut ids: Vec<PageId> = self.quarantine.lock().iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Empties the quarantine set (e.g. after the media was repaired out
    /// of band). The `quarantined_pages` counter keeps its history.
    pub fn clear_quarantine(&self) {
        let mut set = self.quarantine.lock();
        set.clear();
        self.quarantine_nonempty.store(false, Ordering::Release);
    }

    /// Rejects the access when `id` is quarantined, counting the fast
    /// failure against `stats`.
    #[inline]
    fn check_quarantine(&self, id: PageId, stats: &IoStats) -> Result<()> {
        if self.quarantine_nonempty.load(Ordering::Acquire) && self.quarantine.lock().contains(&id)
        {
            stats.record_quarantine_hit();
            return Err(StoreError::corrupt_page(id, QUARANTINED));
        }
        Ok(())
    }

    /// Total pins held across all shards — zero whenever no page access is
    /// in flight. Resilience tests use this to assert that a query aborted
    /// mid-traversal released every frame it was loading.
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .frames
                    .iter()
                    .map(|fr| fr.pins as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Resizes the pool to `capacity` frames, evicting (and flushing) the
    /// least-recently-used pages of each shard if shrinking. The stripe
    /// count is fixed at construction, so each shard keeps at least one
    /// frame (see [`capacity`](Self::capacity)).
    pub fn set_capacity(&self, capacity: usize) -> Result<()> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        self.assert_not_reentrant();
        self.capacity.store(capacity, Ordering::Relaxed);
        let caps = shard_capacities(capacity, self.shards.len());
        for (shard, cap) in self.shards.iter().zip(caps) {
            let mut inner = shard.lock();
            inner.capacity = cap;
            while inner.map.len() > inner.capacity {
                if !self.evict_one(shard, &mut inner)? {
                    break; // every remaining frame is pinned by a loader
                }
            }
        }
        Ok(())
    }

    /// Reads page `id` and passes its bytes to `f`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.with_frame(id, |frame| f(&frame.data))
    }

    /// Reads page `id`, passes its bytes mutably to `f`, and marks the page
    /// dirty. The modification reaches disk on eviction or
    /// [`flush_all`](Self::flush_all).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        self.with_frame(id, |frame| {
            frame.dirty = true;
            f(&mut frame.data)
        })
    }

    /// Locates (or faults in) page `id` and runs `f` on its frame under
    /// the shard lock.
    fn with_frame<R>(&self, id: PageId, f: impl FnOnce(&mut Frame) -> R) -> Result<R> {
        let _guard = ReentrancyGuard::enter(self);
        let shard = self.shard_of(id);
        shard.stats.record_logical_read();
        self.check_quarantine(id, &shard.stats)?;
        loop {
            let mut inner = shard.lock();
            if let Some(&fi) = inner.map.get(&id) {
                if inner.frames[fi as usize].loaded {
                    shard.stats.record_pool_hit();
                    if inner.frames[fi as usize].prefetched {
                        // First demand touch claims the prefetched frame;
                        // from here on it ages like any demanded page.
                        inner.frames[fi as usize].prefetched = false;
                        shard.stats.record_prefetch_hit();
                        self.prefetch_inflight.fetch_sub(1, Ordering::Relaxed);
                        self.notify_prefetch_worker();
                    }
                    if inner.frames[fi as usize].pins == 0 {
                        inner.lru.touch(fi);
                    }
                    return Ok(f(&mut inner.frames[fi as usize]));
                }
                // Another thread is mid-read on this page: let it finish.
                drop(inner);
                std::thread::yield_now();
                continue;
            }

            // Miss: reserve a pinned frame, then read outside the lock.
            shard.stats.record_pool_miss();
            let fi = self.acquire_frame(shard, &mut inner)?;
            {
                let fr = &mut inner.frames[fi as usize];
                fr.page = id;
                fr.dirty = false;
                fr.loaded = false;
                fr.prefetched = false;
                fr.pins = 1;
            }
            inner.map.insert(id, fi);
            drop(inner);

            let mut buf = vec![0u8; FRAME_SIZE].into_boxed_slice();
            let read = self
                .retrying(&shard.stats, || self.disk.read_page(id, &mut buf))
                .and_then(|()| match verify_frame(&buf) {
                    Ok(()) => Ok(()),
                    Err(what) => {
                        shard.stats.record_checksum_failure();
                        // Known-bad media: fail further touches fast
                        // instead of re-reading and re-failing the CRC.
                        if self.quarantine.lock().insert(id) {
                            shard.stats.record_quarantined_page();
                            self.quarantine_nonempty.store(true, Ordering::Release);
                        }
                        Err(StoreError::corrupt_page(id, what))
                    }
                });

            let mut inner = shard.lock();
            let fr = &mut inner.frames[fi as usize];
            debug_assert_eq!(fr.page, id, "pinned frame was stolen");
            if let Err(e) = read {
                // Hand the frame back so failed reads don't leak capacity.
                fr.page = crate::INVALID_PAGE;
                fr.pins = 0;
                inner.map.remove(&id);
                inner.free.push(fi);
                return Err(e);
            }
            shard.stats.record_physical_read();
            fr.data.copy_from_slice(&buf[..PAGE_SIZE]);
            fr.loaded = true;
            fr.pins -= 1;
            if fr.pins == 0 {
                inner.lru.touch(fi);
            }
            return Ok(f(&mut inner.frames[fi as usize]));
        }
    }

    /// Replaces the full contents of page `id` with `payload` without
    /// reading the page's current — possibly corrupt — bytes from the
    /// backend. Journal recovery uses this to rewrite torn pages; regular
    /// code should prefer [`with_page_mut`](Self::with_page_mut).
    ///
    /// # Panics
    ///
    /// Panics if `payload` is not exactly [`PAGE_SIZE`] bytes.
    pub fn overwrite_page(&self, id: PageId, payload: &[u8]) -> Result<()> {
        assert_eq!(payload.len(), PAGE_SIZE, "overwrite_page needs a full page");
        let _guard = ReentrancyGuard::enter(self);
        if id >= self.disk.num_pages() {
            return Err(StoreError::PageOutOfBounds(id));
        }
        let shard = self.shard_of(id);
        loop {
            let mut inner = shard.lock();
            let fi = match inner.map.get(&id) {
                Some(&fi) => {
                    if !inner.frames[fi as usize].loaded {
                        // A concurrent loader owns the frame; its read
                        // would clobber our payload. Wait it out.
                        drop(inner);
                        std::thread::yield_now();
                        continue;
                    }
                    fi
                }
                None => {
                    let fi = self.acquire_frame(shard, &mut inner)?;
                    inner.frames[fi as usize].page = id;
                    inner.map.insert(id, fi);
                    fi
                }
            };
            {
                let fr = &mut inner.frames[fi as usize];
                if fr.prefetched {
                    // A rewrite is neither a prefetch hit nor a waste; the
                    // frame simply stops being speculative.
                    fr.prefetched = false;
                    self.prefetch_inflight.fetch_sub(1, Ordering::Relaxed);
                    self.notify_prefetch_worker();
                }
                fr.data.copy_from_slice(payload);
                fr.dirty = true;
                fr.loaded = true;
            }
            if inner.frames[fi as usize].pins == 0 {
                inner.lru.touch(fi);
            }
            drop(inner);
            // A full-frame rewrite replaces whatever was corrupt: lift the
            // quarantine so recovery can put repaired pages back in service.
            if self.quarantine_nonempty.load(Ordering::Acquire) {
                let mut set = self.quarantine.lock();
                set.remove(&id);
                if set.is_empty() {
                    self.quarantine_nonempty.store(false, Ordering::Release);
                }
            }
            return Ok(());
        }
    }

    /// Allocates a fresh zeroed page, resident in the pool and marked dirty
    /// (it will be written to disk when evicted or flushed). Returns its id.
    pub fn allocate(&self) -> Result<PageId> {
        let _guard = ReentrancyGuard::enter(self);
        let id = self.retrying(&self.stats, || self.disk.allocate())?;
        let shard = self.shard_of(id);
        let mut inner = shard.lock();
        let fi = self.acquire_frame(shard, &mut inner)?;
        {
            let fr = &mut inner.frames[fi as usize];
            fr.page = id;
            fr.data.fill(0);
            fr.dirty = true;
            fr.loaded = true;
            fr.prefetched = false;
        }
        inner.map.insert(id, fi);
        inner.lru.touch(fi);
        Ok(id)
    }

    /// Writes every dirty resident page back to disk (pages stay resident).
    /// Shards are flushed in stripe order, frames in residency order.
    pub fn flush_all(&self) -> Result<()> {
        self.assert_not_reentrant();
        for shard in self.shards.iter() {
            let mut guard = shard.lock();
            let inner = &mut *guard;
            let dirty: Vec<usize> = inner
                .frames
                .iter()
                .enumerate()
                .filter(|(_, fr)| fr.dirty && fr.loaded && fr.page != crate::INVALID_PAGE)
                .map(|(i, _)| i)
                .collect();
            for i in dirty {
                let ShardInner {
                    frames, scratch, ..
                } = &mut *inner;
                self.write_frame(&shard.stats, frames[i].page, &frames[i].data, scratch)?;
                inner.frames[i].dirty = false;
            }
        }
        Ok(())
    }

    /// Writes the listed pages back to disk if they are resident and dirty
    /// (pages stay resident), in the order given. The commit protocol uses
    /// this for granular durability barriers: journal stream, then commit
    /// mark, then home pages.
    pub fn flush_pages(&self, ids: &[PageId]) -> Result<()> {
        self.assert_not_reentrant();
        for &id in ids {
            let shard = self.shard_of(id);
            let mut guard = shard.lock();
            let inner = &mut *guard;
            let Some(&fi) = inner.map.get(&id) else {
                continue;
            };
            let i = fi as usize;
            if inner.frames[i].dirty && inner.frames[i].loaded {
                let ShardInner {
                    frames, scratch, ..
                } = &mut *inner;
                self.write_frame(&shard.stats, id, &frames[i].data, scratch)?;
                inner.frames[i].dirty = false;
            }
        }
        Ok(())
    }

    /// Drops every resident page (flushing dirty ones), leaving the pool
    /// cold. Benchmarks call this between phases so each algorithm starts
    /// with an empty cache. Frames pinned by concurrent loads survive.
    pub fn clear(&self) -> Result<()> {
        self.assert_not_reentrant();
        self.prefetch_queue.lock().clear();
        // Let an in-flight pipelined batch land before sweeping, so the
        // sweep actually leaves the pool cold.
        self.prefetch_quiesce();
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            while self.evict_one(shard, &mut inner)? {}
        }
        Ok(())
    }

    /// Number of pages allocated on the underlying disk.
    pub fn num_pages(&self) -> PageId {
        self.disk.num_pages()
    }

    /// Point-in-time I/O counters, folded across all shards.
    pub fn stats(&self) -> IoSnapshot {
        self.shards
            .iter()
            .fold(self.stats.snapshot(), |acc, shard| {
                acc.merge(&shard.stats.snapshot())
            })
    }

    /// Physical reads so far, summed across shards. Cheaper than
    /// `stats()` — one relaxed load per shard instead of a full
    /// snapshot fold — so I/O-budget guards can poll it per expansion.
    pub fn physical_reads(&self) -> u64 {
        self.shards
            .iter()
            .fold(self.stats.physical_reads(), |acc, shard| {
                acc + shard.stats.physical_reads()
            })
    }

    /// Zeroes the I/O counters of every shard.
    pub fn reset_stats(&self) {
        self.stats.reset();
        for shard in self.shards.iter() {
            shard.stats.reset();
        }
    }

    /// Runs a physical operation under the retry policy: transient
    /// failures are re-attempted (counting each re-attempt in `stats`)
    /// with linear backoff; anything else returns immediately.
    fn retrying<T>(&self, stats: &IoStats, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let policy = *self.retry.lock();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match op() {
                Err(e) if attempt < max_attempts && e.is_transient() => {
                    stats.record_retry();
                    if policy.backoff > Duration::ZERO {
                        std::thread::sleep(policy.backoff.saturating_mul(attempt));
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Seals `payload` into `scratch` and writes the frame out with
    /// retries, counting one physical write on success.
    fn write_frame(
        &self,
        stats: &IoStats,
        id: PageId,
        payload: &[u8],
        scratch: &mut [u8],
    ) -> Result<()> {
        scratch[..PAGE_SIZE].copy_from_slice(payload);
        seal_frame(scratch);
        self.retrying(stats, || self.disk.write_page(id, scratch))?;
        stats.record_physical_write();
        Ok(())
    }

    /// Finds a free frame for a page about to become resident, evicting
    /// the shard's LRU page first when the shard is at capacity.
    ///
    /// Residency is governed by `map.len()` (which includes frames pinned
    /// by in-flight loads), not by the size of the frame vector: after
    /// [`BufferPool::set_capacity`] shrinks the pool, the old frames sit
    /// on the free list, and reusing them must not let the resident count
    /// exceed the new capacity. When every resident frame is pinned the
    /// shard over-provisions temporarily instead of deadlocking.
    fn acquire_frame(&self, shard: &Shard, inner: &mut ShardInner) -> Result<u32> {
        if inner.map.len() >= inner.capacity {
            self.evict_one(shard, inner)?;
        }
        if let Some(fi) = inner.free.pop() {
            return Ok(fi);
        }
        let idx = inner.frames.len() as u32;
        inner.frames.push(Frame::empty());
        inner.lru.grow_to(inner.frames.len());
        Ok(idx)
    }

    /// Evicts the shard's least-recently-used unpinned page, flushing it
    /// if dirty. Returns whether a victim existed.
    fn evict_one(&self, shard: &Shard, inner: &mut ShardInner) -> Result<bool> {
        let Some(victim) = inner.lru.pop_lru() else {
            return Ok(false);
        };
        shard.stats.record_eviction();
        let ShardInner {
            frames,
            scratch,
            map,
            free,
            ..
        } = &mut *inner;
        let frame = &mut frames[victim as usize];
        debug_assert_eq!(frame.pins, 0, "pinned frame reached the LRU list");
        if frame.prefetched {
            frame.prefetched = false;
            shard.stats.record_prefetch_wasted();
            self.prefetch_inflight.fetch_sub(1, Ordering::Relaxed);
            self.notify_prefetch_worker();
        }
        if frame.dirty {
            self.write_frame(&shard.stats, frame.page, &frame.data, scratch)?;
            frame.dirty = false;
        }
        map.remove(&frame.page);
        frame.page = crate::INVALID_PAGE;
        frame.loaded = false;
        free.push(victim);
        Ok(true)
    }

    /// Debug-build check used by the lock-taking entry points that do not
    /// run user closures: panics when called from inside a `with_page`
    /// closure on this same pool, where it would deadlock.
    #[inline]
    fn assert_not_reentrant(&self) {
        #[cfg(debug_assertions)]
        reentrancy::assert_not_active(self as *const _ as usize);
    }
}

impl Drop for BufferPool {
    /// Flags the pipelined readahead worker (if any) to exit. No join:
    /// while parked the worker holds only a `Weak` pool handle (so this
    /// drop can run at all) plus the signal `Arc`, and the drop itself can
    /// run *on* the worker thread when its transient strong handle was the
    /// last one — joining here would deadlock either way.
    fn drop(&mut self) {
        if self.prefetch_bg.load(Ordering::Relaxed) {
            let mut st = self.prefetch_signal.lock();
            st.shutdown = true;
            self.prefetch_signal.cond.notify_all();
        }
    }
}

/// Debug-build re-entrancy detection: a thread-local stack of pools whose
/// shard locks the current thread may be holding inside a `with_page` /
/// `with_page_mut` closure. Re-entering the same pool panics with a
/// diagnostic instead of deadlocking on the (non-reentrant) shard mutex.
/// Nested access to *different* pools is legitimate and allowed.
#[cfg(debug_assertions)]
mod reentrancy {
    use std::cell::RefCell;

    thread_local! {
        static ACTIVE_POOLS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) struct Guard(usize);

    impl Guard {
        pub(super) fn activate(pool: usize) -> Guard {
            ACTIVE_POOLS.with(|stack| {
                assert_not_active_in(&stack.borrow(), pool);
                stack.borrow_mut().push(pool);
            });
            Guard(pool)
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            ACTIVE_POOLS.with(|stack| {
                let mut stack = stack.borrow_mut();
                let top = stack.pop();
                debug_assert_eq!(top, Some(self.0), "re-entrancy guard stack corrupted");
            });
        }
    }

    pub(super) fn assert_not_active(pool: usize) {
        ACTIVE_POOLS.with(|stack| assert_not_active_in(&stack.borrow(), pool));
    }

    fn assert_not_active_in(stack: &[usize], pool: usize) {
        assert!(
            !stack.contains(&pool),
            "re-entrant BufferPool access: a closure passed to \
             with_page/with_page_mut called back into the same pool while \
             its shard lock is held; this deadlocks in release builds. \
             Copy what you need out of the page and return instead."
        );
    }
}

#[cfg(debug_assertions)]
use reentrancy::Guard as ReentrancyGuard;

/// Release builds compile the guard away.
#[cfg(not(debug_assertions))]
struct ReentrancyGuard;

#[cfg(not(debug_assertions))]
impl ReentrancyGuard {
    #[inline(always)]
    fn enter(_pool: &BufferPool) -> ReentrancyGuard {
        ReentrancyGuard
    }
}

#[cfg(debug_assertions)]
impl ReentrancyGuard {
    #[inline]
    fn enter(pool: &BufferPool) -> ReentrancyGuard {
        reentrancy::Guard::activate(pool as *const _ as usize)
    }
}

impl PageStore for BufferPool {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        BufferPool::with_page(self, id, f)
    }

    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        BufferPool::with_page_mut(self, id, f)
    }

    fn allocate(&self) -> Result<PageId> {
        BufferPool::allocate(self)
    }
}

/// Shared handles access pages like the store they wrap, so code generic
/// over [`PageStore`] accepts `&Arc<BufferPool>` directly.
impl<S: PageStore> PageStore for Arc<S> {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        (**self).with_page(id, f)
    }

    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        (**self).with_page_mut(id, f)
    }

    fn allocate(&self) -> Result<PageId> {
        (**self).allocate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultyDisk, InjectedFault, MemDisk};

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(MemDisk::new(), cap)
    }

    #[test]
    fn allocate_then_read_hits_cache() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 42).unwrap();
        let v = p.with_page(id, |b| b[0]).unwrap();
        assert_eq!(v, 42);
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 0, "page never left the pool");
        assert_eq!(s.pool_hits, 2);
        assert_eq!(s.pool_misses, 0);
    }

    #[test]
    fn eviction_writes_dirty_pages_and_rereads_them() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |buf| buf[0] = 1).unwrap();
        p.with_page_mut(b, |buf| buf[0] = 2).unwrap();
        // Third page evicts `a` (LRU of its stripe).
        let c = p.allocate().unwrap();
        p.with_page_mut(c, |buf| buf[0] = 3).unwrap();
        assert!(p.stats().physical_writes >= 1);
        // Reading `a` again faults it back in with its data intact.
        let before = p.stats().physical_reads;
        let v = p.with_page(a, |buf| buf[0]).unwrap();
        assert_eq!(v, 1);
        assert_eq!(p.stats().physical_reads, before + 1);
    }

    #[test]
    fn lru_keeps_hot_page_resident() {
        // Single shard: the test asserts *global* exact-LRU order.
        let p = BufferPool::with_shards(MemDisk::new(), 2, 1);
        let hot = p.allocate().unwrap();
        let cold = p.allocate().unwrap();
        p.with_page(hot, |_| ()).unwrap(); // hot is MRU
        let extra = p.allocate().unwrap(); // must evict `cold`
        p.reset_stats();
        p.with_page(hot, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 0, "hot page stayed resident");
        p.with_page(cold, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 1, "cold page was evicted");
        let _ = extra;
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = MemDisk::new();
        // Keep a raw handle by allocating through the pool, flushing, then
        // reading via a second pool over the same disk... MemDisk is moved
        // into the pool, so instead verify via eviction-free readback:
        let p = BufferPool::new(disk, 4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[7] = 9).unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.stats().physical_writes, 1);
        // Clearing drops the frame; the next read faults from disk and must
        // see the flushed data.
        p.clear().unwrap();
        assert_eq!(p.with_page(id, |b| b[7]).unwrap(), 9);
    }

    #[test]
    fn clear_flushes_dirty_pages() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 5).unwrap();
        p.clear().unwrap();
        assert!(p.stats().physical_writes >= 1);
        assert_eq!(p.with_page(id, |b| b[0]).unwrap(), 5);
    }

    #[test]
    fn shrink_capacity_evicts_excess() {
        // Single shard: the test asserts a *global* LRU residency set.
        let p = BufferPool::with_shards(MemDisk::new(), 8, 1);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        p.set_capacity(2).unwrap();
        assert_eq!(p.capacity(), 2);
        p.reset_stats();
        // Only the two most recently used pages can still be resident.
        let mut faults = 0;
        for &id in &ids {
            let before = p.stats().physical_reads;
            p.with_page(id, |_| ()).unwrap();
            if p.stats().physical_reads > before {
                faults += 1;
            }
        }
        assert!(faults >= 6, "expected at least 6 faults, got {faults}");
    }

    #[test]
    fn grow_capacity_reduces_faults() {
        let run = |cap: usize| -> u64 {
            let p = pool(cap);
            let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
            p.reset_stats();
            // Three cyclic sweeps: classic LRU-thrash workload.
            for _ in 0..3 {
                for &id in &ids {
                    p.with_page(id, |_| ()).unwrap();
                }
            }
            p.stats().physical_reads
        };
        assert!(run(4) > run(16), "bigger pool must fault less");
        assert_eq!(run(16), 0, "pool holding everything never faults");
    }

    #[test]
    fn shrunk_pool_enforces_new_capacity() {
        // Regression: shrinking used to leave old frames on the free
        // list, silently keeping the old effective capacity.
        let p = pool(1024);
        let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
        p.set_capacity(4).unwrap();
        p.clear().unwrap();
        p.reset_stats();
        // Three cyclic sweeps over 16 pages with (effectively) one frame
        // per stripe: pure thrash, every access must miss.
        for _ in 0..3 {
            for &id in &ids {
                p.with_page(id, |_| ()).unwrap();
            }
        }
        assert_eq!(
            p.stats().physical_reads,
            48,
            "shrunken pool must behave exactly like a freshly small pool"
        );
    }

    #[test]
    fn logical_vs_physical_accounting() {
        let p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.reset_stats();
        // Alternating reads with a single frame: every access is a miss.
        for _ in 0..5 {
            p.with_page(a, |_| ()).unwrap();
            p.with_page(b, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.physical_reads, 10);
        assert_eq!(s.pool_misses, 10);
        assert_eq!(s.pool_hits, 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn hit_miss_counters_partition_logical_reads() {
        let p = pool(8);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        p.reset_stats();
        for _ in 0..3 {
            for &id in &ids {
                p.with_page(id, |_| ()).unwrap();
            }
        }
        let s = p.stats();
        assert_eq!(s.logical_reads, 12);
        assert_eq!(s.pool_misses, 4, "first sweep faults each page once");
        assert_eq!(s.pool_hits, 8, "later sweeps hit resident frames");
        assert_eq!(s.pool_hits + s.pool_misses, s.logical_reads);
    }

    #[test]
    fn shards_clamped_to_capacity() {
        let p = pool(3);
        assert_eq!(p.num_shards(), 3);
        let p = BufferPool::with_shards(MemDisk::new(), 64, 4);
        assert_eq!(p.num_shards(), 4);
        let p = BufferPool::with_shards(MemDisk::new(), 2, 16);
        assert_eq!(p.num_shards(), 2);
    }

    #[test]
    fn shard_capacities_cover_budget() {
        assert_eq!(shard_capacities(64, 8), vec![8; 8]);
        assert_eq!(shard_capacities(10, 4), vec![3, 3, 2, 2]);
        // Below one frame per stripe, every stripe still gets one.
        assert_eq!(shard_capacities(2, 4), vec![1, 1, 1, 1]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "re-entrant BufferPool access")]
    fn reentrant_access_panics_instead_of_deadlocking() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        let _ = p.with_page(a, |_| {
            // Same pool, same page, same shard: would deadlock.
            let _ = p.with_page(a, |_| ());
        });
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "re-entrant BufferPool access")]
    fn reentrant_flush_panics() {
        let p = pool(4);
        let a = p.allocate().unwrap();
        let _ = p.with_page(a, |_| {
            let _ = p.flush_all();
        });
    }

    #[test]
    fn nested_access_to_distinct_pools_is_allowed() {
        let p1 = pool(4);
        let p2 = pool(4);
        let a = p1.allocate().unwrap();
        let b = p2.allocate().unwrap();
        p2.with_page_mut(b, |buf| buf[0] = 7).unwrap();
        let v = p1
            .with_page(a, |_| p2.with_page(b, |buf| buf[0]).unwrap())
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn retry_policy_recovers_transient_faults() {
        let disk = FaultyDisk::unlimited(MemDisk::new());
        let op_after_setup = 3; // allocate, allocate, eviction write
        disk.inject_at(op_after_setup, InjectedFault::Transient);
        let p = BufferPool::new(disk, 1);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |b| b[0] = 9).unwrap();
        let _b = p.allocate().unwrap(); // evicts `a` (dirty write, op 2)
                                        // Fault fires on the physical read of `a`; the default policy
                                        // retries and succeeds.
        assert_eq!(p.with_page(a, |b| b[0]).unwrap(), 9);
        assert_eq!(p.stats().retries, 1);
    }

    #[test]
    fn single_attempt_policy_surfaces_transient_faults() {
        let disk = FaultyDisk::unlimited(MemDisk::new());
        disk.inject_at(3, InjectedFault::Transient);
        let p = BufferPool::new(disk, 1);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        });
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |b| b[0] = 9).unwrap();
        let _b = p.allocate().unwrap();
        assert!(matches!(
            p.with_page(a, |_| ()),
            Err(StoreError::Injected { transient: true })
        ));
        assert_eq!(p.stats().retries, 0);
    }

    #[test]
    fn corrupted_frame_is_detected_on_read() {
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 1).unwrap();
        p.clear().unwrap();
        // Flip a payload byte behind the pool's back.
        let mut frame = vec![0u8; FRAME_SIZE];
        mem.read_page(id, &mut frame).unwrap();
        frame[100] ^= 0xFF;
        mem.write_page(id, &frame).unwrap();
        match p.with_page(id, |_| ()) {
            Err(StoreError::Corrupt { page, .. }) => assert_eq!(page, Some(id)),
            other => panic!("expected corruption error, got {other:?}"),
        }
        assert_eq!(p.stats().checksum_failures, 1);
    }

    #[test]
    fn failed_read_does_not_leak_frames() {
        // Regression: a failed fetch used to leak its frame slot.
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 2);
        let id = p.allocate().unwrap();
        p.clear().unwrap();
        let mut frame = vec![0u8; FRAME_SIZE];
        mem.read_page(id, &mut frame).unwrap();
        frame[0] = 1; // unsealed damage
        mem.write_page(id, &frame).unwrap();
        for _ in 0..10 {
            assert!(p.with_page(id, |_| ()).is_err());
        }
        // The pool still has working frames for healthy pages.
        let fresh = p.allocate().unwrap();
        p.with_page_mut(fresh, |b| b[0] = 2).unwrap();
        assert_eq!(p.with_page(fresh, |b| b[0]).unwrap(), 2);
    }

    #[test]
    fn overwrite_and_flush_pages_roundtrip() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        let payload = vec![0xA5u8; PAGE_SIZE];
        p.overwrite_page(id, &payload).unwrap();
        p.flush_pages(&[id]).unwrap();
        assert_eq!(p.stats().physical_writes, 1);
        p.clear().unwrap();
        assert!(p.with_page(id, |b| b.to_vec()).unwrap() == payload);
        assert!(matches!(
            p.overwrite_page(99, &payload),
            Err(StoreError::PageOutOfBounds(99))
        ));
    }

    /// Damages page `id` behind the pool's back so its next read fails CRC.
    fn damage(mem: &MemDisk, id: PageId) {
        let mut frame = vec![0u8; FRAME_SIZE];
        mem.read_page(id, &mut frame).unwrap();
        frame[100] ^= 0xFF;
        mem.write_page(id, &frame).unwrap();
    }

    #[test]
    fn corrupt_page_is_quarantined_and_fails_fast() {
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 1).unwrap();
        p.clear().unwrap();
        damage(&mem, id);

        // First touch: CRC failure, page enters quarantine.
        assert!(p.with_page(id, |_| ()).is_err());
        assert!(p.is_quarantined(id));
        assert_eq!(p.quarantined_pages(), vec![id]);
        let after_first = p.stats();
        assert_eq!(after_first.checksum_failures, 1);
        assert_eq!(after_first.quarantined_pages, 1);
        assert_eq!(after_first.quarantine_hits, 0);

        // Second touch: fails fast without another physical read.
        match p.with_page(id, |_| ()) {
            Err(StoreError::Corrupt { page, what }) => {
                assert_eq!(page, Some(id));
                assert_eq!(what, QUARANTINED);
            }
            other => panic!("expected quarantine rejection, got {other:?}"),
        }
        let after_second = p.stats();
        assert_eq!(after_second.checksum_failures, 1, "no re-read of bad media");
        assert_eq!(after_second.quarantined_pages, 1, "quarantined only once");
        assert_eq!(after_second.quarantine_hits, 1);

        // Healthy pages are unaffected.
        let fresh = p.allocate().unwrap();
        p.with_page_mut(fresh, |b| b[0] = 2).unwrap();
        assert_eq!(p.with_page(fresh, |b| b[0]).unwrap(), 2);

        // clear_quarantine puts the page back in service (still corrupt on
        // media, so the read fails CRC again and re-quarantines).
        p.clear_quarantine();
        assert!(!p.is_quarantined(id));
        assert!(p.with_page(id, |_| ()).is_err());
        assert_eq!(p.stats().checksum_failures, 2);
        assert!(p.is_quarantined(id));
    }

    #[test]
    fn overwrite_heals_quarantined_page() {
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 4);
        let id = p.allocate().unwrap();
        p.clear().unwrap();
        damage(&mem, id);
        assert!(p.with_page(id, |_| ()).is_err());
        assert!(p.is_quarantined(id));

        // A full-page rewrite (the journal-recovery path) lifts the
        // quarantine and the page serves the new contents.
        let payload = vec![0x5Au8; PAGE_SIZE];
        p.overwrite_page(id, &payload).unwrap();
        assert!(!p.is_quarantined(id));
        assert_eq!(p.with_page(id, |b| b.to_vec()).unwrap(), payload);
        p.flush_pages(&[id]).unwrap();
        p.clear().unwrap();
        assert_eq!(p.with_page(id, |b| b.to_vec()).unwrap(), payload);
    }

    #[test]
    fn manual_quarantine_blocks_reads() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 9).unwrap();
        p.quarantine(id);
        assert!(matches!(
            p.with_page(id, |_| ()),
            Err(StoreError::Corrupt {
                what: QUARANTINED,
                ..
            })
        ));
        assert_eq!(p.stats().quarantine_hits, 1);
        p.clear_quarantine();
        assert_eq!(p.with_page(id, |b| b[0]).unwrap(), 9);
    }

    #[test]
    fn prefetch_is_noop_until_enabled() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.clear().unwrap();
        p.reset_stats();
        p.prefetch(&[(id, 0)]);
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 0);
        assert_eq!(s.physical_reads, 0);
    }

    #[test]
    fn prefetch_loads_pages_without_logical_reads() {
        let p = pool(8);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        p.reset_stats();
        p.enable_prefetch(PrefetchConfig::default());
        let hints: Vec<_> = ids.iter().map(|&id| (id, 1)).collect();
        p.prefetch(&hints);
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 4);
        assert_eq!(s.physical_reads, 4);
        assert_eq!(s.logical_reads, 0, "readahead charges no logical reads");
        assert_eq!(s.pool_misses, 0);
        assert_eq!(p.prefetch_inflight(), 4);
        assert_eq!(p.pinned_frames(), 0, "published frames are unpinned");
        // Demand accesses are now pure pool hits, each claiming its frame.
        for &id in &ids {
            p.with_page(id, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 4, "no further physical reads");
        assert_eq!(s.pool_hits, 4);
        assert_eq!(s.prefetch_hits, 4);
        assert_eq!(p.prefetch_inflight(), 0);
        // A second touch is an ordinary hit, not another prefetch hit.
        p.with_page(ids[0], |_| ()).unwrap();
        assert_eq!(p.stats().prefetch_hits, 4);
    }

    #[test]
    fn prefetch_skips_resident_and_out_of_bounds_pages() {
        let p = pool(8);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.clear().unwrap();
        p.with_page(a, |_| ()).unwrap(); // `a` resident
        p.reset_stats();
        p.enable_prefetch(PrefetchConfig::default());
        p.prefetch(&[(a, 0), (b, 0), (999, 0)]);
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 1, "only the absent in-bounds page");
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn prefetch_respects_inflight_ceiling_and_drains_later() {
        // Single shard so LRU/eviction arithmetic is global.
        let p = BufferPool::with_shards(MemDisk::new(), 8, 1);
        let ids: Vec<_> = (0..6).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        p.reset_stats();
        p.enable_prefetch(PrefetchConfig {
            max_inflight: 2,
            batch: 2,
        });
        let hints: Vec<_> = ids.iter().map(|&id| (id, 1)).collect();
        p.prefetch(&hints);
        assert_eq!(p.stats().prefetch_issued, 2, "ceiling caps the pump");
        assert_eq!(p.prefetch_inflight(), 2);
        // Claiming the two frames frees budget; an empty submit re-pumps
        // the queued remainder.
        p.with_page(ids[0], |_| ()).unwrap();
        p.with_page(ids[1], |_| ()).unwrap();
        p.prefetch(&[]);
        assert_eq!(p.stats().prefetch_issued, 4);
        assert_eq!(p.prefetch_inflight(), 2);
    }

    #[test]
    fn prefetch_priority_orders_the_queue() {
        let p = BufferPool::with_shards(MemDisk::new(), 8, 1);
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        p.reset_stats();
        p.enable_prefetch(PrefetchConfig {
            max_inflight: 1,
            batch: 1,
        });
        // Low priority first in submission order; the high-priority hint
        // must still be fetched first.
        p.prefetch(&[(ids[0], 1), (ids[1], 5), (ids[2], 1)]);
        assert_eq!(p.stats().prefetch_issued, 1);
        assert_eq!(
            p.stats().physical_reads,
            1,
            "exactly the high-priority page"
        );
        // Reading the others faults them in: only ids[1] was prefetched.
        p.reset_stats();
        p.with_page(ids[1], |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 0, "high-priority page resident");
        p.with_page(ids[0], |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 1, "low-priority page was queued");
    }

    #[test]
    fn prefetched_frames_are_first_out_and_count_wasted() {
        // Scan resistance: capacity 4, two hot demand pages, then a
        // prefetch sweep bigger than the pool. The pump fills the two
        // spare frames and stalls (it never evicts its own still-unclaimed
        // frames to keep sweeping); demand pressure then reclaims the
        // speculative frames first, never the hot pages.
        let p = BufferPool::with_shards(MemDisk::new(), 4, 1);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        let hot = [ids[0], ids[1]];
        p.with_page(hot[0], |_| ()).unwrap();
        p.with_page(hot[1], |_| ()).unwrap();
        p.reset_stats();
        p.enable_prefetch(PrefetchConfig {
            max_inflight: 8,
            batch: 2,
        });
        let sweep: Vec<_> = ids[2..].iter().map(|&id| (id, 1)).collect();
        p.prefetch(&sweep);
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 2, "pump fills the spare frames, then stalls");
        assert_eq!(s.prefetch_wasted, 0, "the pump never evicts its own window");
        // A demand miss reclaims a cold speculative frame, not a hot page.
        p.with_page(ids[7], |_| ()).unwrap();
        let s = p.stats();
        assert_eq!(s.prefetch_wasted, 1, "cold speculative frame went first");
        // The hot pages never left the pool.
        p.with_page(hot[0], |_| ()).unwrap();
        p.with_page(hot[1], |_| ()).unwrap();
        assert_eq!(
            p.stats().physical_reads,
            3,
            "no demand faults: hot pages stayed resident"
        );
    }

    #[test]
    fn prefetch_pump_stalls_rather_than_churning_its_window() {
        // Capacity 4, two demand pages, four hints. Only two frames are
        // spare, so the pump loads two pages and defers the rest: issuing
        // them would evict the not-yet-claimed speculative frames, wasting
        // the reads. Once demand claims the window, the deferred hints
        // load by evicting demand pages like any other miss.
        let p = BufferPool::with_shards(MemDisk::new(), 4, 1);
        let hot: Vec<_> = (0..2).map(|_| p.allocate().unwrap()).collect();
        let sweep: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        for &h in &hot {
            p.with_page(h, |_| ()).unwrap();
        }
        p.reset_stats();
        p.enable_prefetch(PrefetchConfig {
            max_inflight: 4,
            batch: 2,
        });
        let hints: Vec<_> = sweep.iter().map(|&id| (id, 1)).collect();
        p.prefetch(&hints);
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 2, "two spare frames, two loads");
        assert_eq!(s.prefetch_wasted, 0);
        // Pumping again changes nothing while the window is unclaimed.
        p.prefetch(&[]);
        assert_eq!(p.stats().prefetch_issued, 2, "deferred hints stay queued");
        // Claim both speculative frames, then pump: the deferred hints now
        // load (evicting the stale demand pages), and every prefetched
        // page is eventually claimed — nothing is wasted.
        p.with_page(sweep[0], |_| ()).unwrap();
        p.with_page(sweep[1], |_| ()).unwrap();
        p.prefetch(&[]);
        p.with_page(sweep[2], |_| ()).unwrap();
        p.with_page(sweep[3], |_| ()).unwrap();
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 4, "deferred hints loaded after claims");
        assert_eq!(s.prefetch_hits, 4);
        assert_eq!(s.prefetch_wasted, 0);
    }

    #[test]
    fn pipelined_prefetch_loads_in_background_and_quiesces() {
        let p = Arc::new(BufferPool::with_shards(MemDisk::new(), 8, 1));
        let ids: Vec<_> = (0..6).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        p.reset_stats();
        p.enable_prefetch_pipelined(PrefetchConfig {
            max_inflight: 4,
            batch: 4,
        });
        let hints: Vec<_> = ids.iter().map(|&id| (id, 1)).collect();
        p.prefetch(&hints);
        // The submit returns immediately; the quiesce barrier is what
        // makes the worker's progress observable.
        p.prefetch_quiesce();
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 4, "worker pumped to the ceiling");
        assert_eq!(s.physical_reads, 4);
        assert_eq!(s.logical_reads, 0, "readahead charges no logical reads");
        assert_eq!(p.prefetch_inflight(), 4);
        assert_eq!(p.pinned_frames(), 0, "published frames are unpinned");
        // Demand touches claim the loaded frames; each claim frees
        // in-flight budget and wakes the worker, which drains the queued
        // remainder on its own — no explicit re-pump call.
        for &id in &ids[..4] {
            p.with_page(id, |_| ()).unwrap();
        }
        p.prefetch_quiesce();
        let s = p.stats();
        assert_eq!(s.prefetch_hits, 4);
        assert_eq!(
            s.prefetch_issued, 6,
            "claims woke the worker to finish the queue"
        );
        assert_eq!(p.prefetch_inflight(), 2);
        for &id in &ids[4..] {
            p.with_page(id, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.prefetch_hits, 6);
        assert_eq!(s.pool_hits, 6);
        assert_eq!(s.physical_reads, 6, "every read was speculative");
        // Disabling parks the worker and leaves counters stable.
        p.disable_prefetch();
        assert_eq!(p.stats().prefetch_issued, 6);
    }

    #[test]
    fn prefetch_corrupt_page_is_quarantined_not_published() {
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 4);
        let id = p.allocate().unwrap();
        p.clear().unwrap();
        damage(&mem, id);
        p.reset_stats();
        p.enable_prefetch(PrefetchConfig::default());
        p.prefetch(&[(id, 0)]);
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 0, "corrupt frame is never published");
        assert_eq!(s.checksum_failures, 1);
        assert_eq!(s.quarantined_pages, 1);
        assert_eq!(p.pinned_frames(), 0);
        assert!(p.is_quarantined(id));
        // The demand access fails fast on the quarantine.
        assert!(matches!(
            p.with_page(id, |_| ()),
            Err(StoreError::Corrupt {
                what: QUARANTINED,
                ..
            })
        ));
        // And further hints for the page are dropped silently.
        p.prefetch(&[(id, 0)]);
        assert_eq!(p.stats().checksum_failures, 1);
    }

    #[test]
    fn clear_discards_queued_hints() {
        let p = BufferPool::with_shards(MemDisk::new(), 8, 1);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        p.clear().unwrap();
        p.enable_prefetch(PrefetchConfig {
            max_inflight: 1,
            batch: 1,
        });
        p.reset_stats();
        let hints: Vec<_> = ids.iter().map(|&id| (id, 0)).collect();
        p.prefetch(&hints); // issues 1, queues 3
        assert_eq!(p.stats().prefetch_issued, 1);
        p.clear().unwrap();
        p.prefetch(&[]); // nothing left to pump
        assert_eq!(p.stats().prefetch_issued, 1);
    }

    #[test]
    fn pins_return_to_zero_after_failed_read() {
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 4);
        let id = p.allocate().unwrap();
        p.clear().unwrap();
        damage(&mem, id);
        assert_eq!(p.pinned_frames(), 0);
        assert!(p.with_page(id, |_| ()).is_err());
        assert_eq!(p.pinned_frames(), 0, "failed load must release its pin");
        p.clear_quarantine();
        assert!(p.with_page(id, |_| ()).is_err());
        assert_eq!(p.pinned_frames(), 0);
    }
}
