//! The buffer pool: a fixed budget of in-memory page frames managed with
//! exact LRU replacement.
//!
//! Every page access made by the indices and join algorithms goes through
//! [`BufferPool::with_page`] / [`BufferPool::with_page_mut`]; the pool
//! charges a logical read per access and a physical read per miss. The
//! default experimental configuration is the paper's: 64 frames × 8 KiB =
//! 512 KiB (§4.1). [`BufferPool::set_capacity`] changes the budget at run
//! time, which is how the Figure 3(b) buffer-size sweep is driven.
//!
//! The pool is also the integrity boundary: frames are sealed with a CRC32
//! trailer ([`crate::checksum`]) on every physical write and verified on
//! every physical read, so a torn or bit-rotted frame surfaces as
//! [`StoreError::Corrupt`] naming the page instead of reaching a codec.
//! Transient backend failures are retried under a [`RetryPolicy`]; both
//! retries and checksum failures are counted in [`crate::IoStats`].

use crate::checksum::{seal_frame, verify_frame};
use crate::lru::LruList;
use crate::{DiskBackend, IoSnapshot, IoStats, PageId, Result, StoreError, FRAME_SIZE, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Default pool capacity: 64 pages = 512 KiB, the paper's configuration.
pub const DEFAULT_CAPACITY: usize = 64;

/// How the pool reacts to transient physical-I/O failures (injected
/// transient faults, interrupted/timed-out OS calls).
///
/// Each failed attempt is retried up to `max_attempts` total attempts,
/// sleeping `backoff × attempt` between tries (linear backoff; the default
/// is no sleep, which keeps fault-sweep tests fast). Permanent errors —
/// out-of-bounds, corruption, injected permanent faults — are never
/// retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (minimum 1).
    pub max_attempts: u32,
    /// Base sleep between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

/// Uniform page-access interface over the buffer pool and the structures
/// that wrap it (shared handles, [`crate::Txn`] side-buffers).
///
/// The node codecs and index write paths are generic over this trait, so
/// the same code serves direct pool access and buffered transactional
/// access.
pub trait PageStore {
    /// Reads page `id` and passes its [`PAGE_SIZE`] bytes to `f`.
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R>;

    /// Reads page `id`, passes its bytes mutably to `f`, and records the
    /// modification (dirty frame or transaction write-set entry).
    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R>;

    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> Result<PageId>;
}

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<PageId, u32>,
    lru: LruList,
    free: Vec<u32>,
    capacity: usize,
    /// Staging buffer for physical transfers: payload + checksum trailer.
    scratch: Box<[u8]>,
}

/// An LRU buffer pool over a [`DiskBackend`].
///
/// The pool is internally synchronized and meant to be shared (e.g. in an
/// `Arc`) between the indices of both join inputs, so that — exactly as in
/// the paper's setup — the two trees compete for the same 512 KiB of
/// memory.
///
/// # Re-entrancy
///
/// The closures passed to [`with_page`](Self::with_page) and
/// [`with_page_mut`](Self::with_page_mut) run while the pool lock is held
/// and must not call back into the pool; decode what you need and return.
pub struct BufferPool {
    disk: Box<dyn DiskBackend>,
    inner: Mutex<Inner>,
    stats: IoStats,
    retry: Mutex<RetryPolicy>,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames over `disk`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(disk: impl DiskBackend, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk: Box::new(disk),
            inner: Mutex::new(Inner {
                frames: Vec::new(),
                map: HashMap::new(),
                lru: LruList::new(capacity),
                free: Vec::new(),
                capacity,
                scratch: vec![0u8; FRAME_SIZE].into_boxed_slice(),
            }),
            stats: IoStats::new(),
            retry: Mutex::new(RetryPolicy::default()),
        }
    }

    /// Creates a pool with the paper's default 64-frame (512 KiB) capacity.
    pub fn with_default_capacity(disk: impl DiskBackend) -> Self {
        Self::new(disk, DEFAULT_CAPACITY)
    }

    /// Current capacity in frames.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Current transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Replaces the transient-fault retry policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Resizes the pool to `capacity` frames, evicting (and flushing) the
    /// least-recently-used pages if shrinking.
    pub fn set_capacity(&self, capacity: usize) -> Result<()> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let mut inner = self.inner.lock();
        inner.capacity = capacity;
        let target = capacity.max(inner.frames.len());
        inner.lru.grow_to(target);
        while inner.lru.len() > capacity {
            self.evict_one(&mut inner)?;
        }
        Ok(())
    }

    /// Reads page `id` and passes its bytes to `f`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let frame = self.fetch(&mut inner, id)?;
        Ok(f(&inner.frames[frame as usize].data))
    }

    /// Reads page `id`, passes its bytes mutably to `f`, and marks the page
    /// dirty. The modification reaches disk on eviction or
    /// [`flush_all`](Self::flush_all).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let frame = self.fetch(&mut inner, id)?;
        let frame = &mut inner.frames[frame as usize];
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Replaces the full contents of page `id` with `payload` without
    /// reading the page's current — possibly corrupt — bytes from the
    /// backend. Journal recovery uses this to rewrite torn pages; regular
    /// code should prefer [`with_page_mut`](Self::with_page_mut).
    ///
    /// # Panics
    ///
    /// Panics if `payload` is not exactly [`PAGE_SIZE`] bytes.
    pub fn overwrite_page(&self, id: PageId, payload: &[u8]) -> Result<()> {
        assert_eq!(payload.len(), PAGE_SIZE, "overwrite_page needs a full page");
        if id >= self.disk.num_pages() {
            return Err(StoreError::PageOutOfBounds(id));
        }
        let mut inner = self.inner.lock();
        let frame = match inner.map.get(&id) {
            Some(&f) => f,
            None => {
                let f = self.acquire_frame(&mut inner)?;
                inner.frames[f as usize].page = id;
                inner.map.insert(id, f);
                f
            }
        };
        inner.lru.touch(frame);
        let fr = &mut inner.frames[frame as usize];
        fr.data.copy_from_slice(payload);
        fr.dirty = true;
        Ok(())
    }

    /// Allocates a fresh zeroed page, resident in the pool and marked dirty
    /// (it will be written to disk when evicted or flushed). Returns its id.
    pub fn allocate(&self) -> Result<PageId> {
        let id = self.retrying(|| self.disk.allocate())?;
        let mut inner = self.inner.lock();
        let frame = self.acquire_frame(&mut inner)?;
        {
            let fr = &mut inner.frames[frame as usize];
            fr.page = id;
            fr.data.fill(0);
            fr.dirty = true;
        }
        inner.map.insert(id, frame);
        inner.lru.touch(frame);
        Ok(id)
    }

    /// Writes every dirty resident page back to disk (pages stay resident).
    pub fn flush_all(&self) -> Result<()> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let dirty: Vec<usize> = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, fr)| fr.dirty && fr.page != crate::INVALID_PAGE)
            .map(|(i, _)| i)
            .collect();
        for i in dirty {
            let Inner {
                frames, scratch, ..
            } = &mut *inner;
            self.write_frame(frames[i].page, &frames[i].data, scratch)?;
            inner.frames[i].dirty = false;
        }
        Ok(())
    }

    /// Writes the listed pages back to disk if they are resident and dirty
    /// (pages stay resident). The commit protocol uses this for granular
    /// durability barriers: journal stream, then commit mark, then home
    /// pages.
    pub fn flush_pages(&self, ids: &[PageId]) -> Result<()> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        for &id in ids {
            let Some(&f) = inner.map.get(&id) else {
                continue;
            };
            let i = f as usize;
            if inner.frames[i].dirty {
                let Inner {
                    frames, scratch, ..
                } = &mut *inner;
                self.write_frame(id, &frames[i].data, scratch)?;
                inner.frames[i].dirty = false;
            }
        }
        Ok(())
    }

    /// Drops every resident page (flushing dirty ones), leaving the pool
    /// cold. Benchmarks call this between phases so each algorithm starts
    /// with an empty cache.
    pub fn clear(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        while inner.lru.len() > 0 {
            self.evict_one(&mut inner)?;
        }
        Ok(())
    }

    /// Number of pages allocated on the underlying disk.
    pub fn num_pages(&self) -> PageId {
        self.disk.num_pages()
    }

    /// Point-in-time I/O counters.
    pub fn stats(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Runs a physical operation under the retry policy: transient
    /// failures are re-attempted (counting each re-attempt) with linear
    /// backoff; anything else returns immediately.
    fn retrying<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let policy = *self.retry.lock();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match op() {
                Err(e) if attempt < max_attempts && e.is_transient() => {
                    self.stats.record_retry();
                    if policy.backoff > Duration::ZERO {
                        std::thread::sleep(policy.backoff.saturating_mul(attempt));
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Seals `payload` into `scratch` and writes the frame out with
    /// retries, counting one physical write on success.
    fn write_frame(&self, id: PageId, payload: &[u8], scratch: &mut [u8]) -> Result<()> {
        scratch[..PAGE_SIZE].copy_from_slice(payload);
        seal_frame(scratch);
        self.retrying(|| self.disk.write_page(id, scratch))?;
        self.stats.record_physical_write();
        Ok(())
    }

    /// Locates (or faults in) page `id`, returning its frame index.
    fn fetch(&self, inner: &mut Inner, id: PageId) -> Result<u32> {
        self.stats.record_logical_read();
        if let Some(&frame) = inner.map.get(&id) {
            inner.lru.touch(frame);
            return Ok(frame);
        }
        let frame = self.acquire_frame(inner)?;
        let Inner {
            frames,
            scratch,
            free,
            map,
            lru,
            ..
        } = &mut *inner;
        let read = self
            .retrying(|| self.disk.read_page(id, scratch))
            .and_then(|()| match verify_frame(scratch) {
                Ok(()) => Ok(()),
                Err(what) => {
                    self.stats.record_checksum_failure();
                    Err(StoreError::corrupt_page(id, what))
                }
            });
        if let Err(e) = read {
            // Hand the frame back so failed reads don't leak capacity.
            free.push(frame);
            return Err(e);
        }
        self.stats.record_physical_read();
        let fr = &mut frames[frame as usize];
        fr.data.copy_from_slice(&scratch[..PAGE_SIZE]);
        fr.page = id;
        fr.dirty = false;
        map.insert(id, frame);
        lru.touch(frame);
        Ok(frame)
    }

    /// Finds a free frame for a page about to become resident, evicting
    /// the LRU page first when the pool is at capacity.
    ///
    /// Residency is governed by `lru.len()`, not by the size of the frame
    /// vector: after [`BufferPool::set_capacity`] shrinks the pool, the
    /// old frames sit on the free list, and reusing them must not let the
    /// resident count exceed the new capacity.
    fn acquire_frame(&self, inner: &mut Inner) -> Result<u32> {
        if inner.lru.len() >= inner.capacity {
            self.evict_one(inner)?;
        }
        if let Some(frame) = inner.free.pop() {
            return Ok(frame);
        }
        debug_assert!(inner.frames.len() < inner.capacity);
        let idx = inner.frames.len() as u32;
        inner.frames.push(Frame {
            page: crate::INVALID_PAGE,
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            dirty: false,
        });
        inner.lru.grow_to(inner.frames.len());
        Ok(idx)
    }

    /// Evicts the least-recently-used page, flushing it if dirty.
    fn evict_one(&self, inner: &mut Inner) -> Result<()> {
        let victim = inner.lru.pop_lru().expect("evict_one called on empty pool");
        let Inner {
            frames,
            scratch,
            map,
            free,
            ..
        } = &mut *inner;
        let frame = &mut frames[victim as usize];
        if frame.dirty {
            self.write_frame(frame.page, &frame.data, scratch)?;
            frame.dirty = false;
        }
        map.remove(&frame.page);
        frame.page = crate::INVALID_PAGE;
        free.push(victim);
        Ok(())
    }
}

impl PageStore for BufferPool {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        BufferPool::with_page(self, id, f)
    }

    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        BufferPool::with_page_mut(self, id, f)
    }

    fn allocate(&self) -> Result<PageId> {
        BufferPool::allocate(self)
    }
}

/// Shared handles access pages like the store they wrap, so code generic
/// over [`PageStore`] accepts `&Arc<BufferPool>` directly.
impl<S: PageStore> PageStore for Arc<S> {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        (**self).with_page(id, f)
    }

    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        (**self).with_page_mut(id, f)
    }

    fn allocate(&self) -> Result<PageId> {
        (**self).allocate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultyDisk, InjectedFault, MemDisk};

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(MemDisk::new(), cap)
    }

    #[test]
    fn allocate_then_read_hits_cache() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 42).unwrap();
        let v = p.with_page(id, |b| b[0]).unwrap();
        assert_eq!(v, 42);
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 0, "page never left the pool");
    }

    #[test]
    fn eviction_writes_dirty_pages_and_rereads_them() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |buf| buf[0] = 1).unwrap();
        p.with_page_mut(b, |buf| buf[0] = 2).unwrap();
        // Third page evicts `a` (LRU).
        let c = p.allocate().unwrap();
        p.with_page_mut(c, |buf| buf[0] = 3).unwrap();
        assert!(p.stats().physical_writes >= 1);
        // Reading `a` again faults it back in with its data intact.
        let before = p.stats().physical_reads;
        let v = p.with_page(a, |buf| buf[0]).unwrap();
        assert_eq!(v, 1);
        assert_eq!(p.stats().physical_reads, before + 1);
    }

    #[test]
    fn lru_keeps_hot_page_resident() {
        let p = pool(2);
        let hot = p.allocate().unwrap();
        let cold = p.allocate().unwrap();
        p.with_page(hot, |_| ()).unwrap(); // hot is MRU
        let extra = p.allocate().unwrap(); // must evict `cold`
        p.reset_stats();
        p.with_page(hot, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 0, "hot page stayed resident");
        p.with_page(cold, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 1, "cold page was evicted");
        let _ = extra;
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = MemDisk::new();
        // Keep a raw handle by allocating through the pool, flushing, then
        // reading via a second pool over the same disk... MemDisk is moved
        // into the pool, so instead verify via eviction-free readback:
        let p = BufferPool::new(disk, 4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[7] = 9).unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.stats().physical_writes, 1);
        // Clearing drops the frame; the next read faults from disk and must
        // see the flushed data.
        p.clear().unwrap();
        assert_eq!(p.with_page(id, |b| b[7]).unwrap(), 9);
    }

    #[test]
    fn clear_flushes_dirty_pages() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 5).unwrap();
        p.clear().unwrap();
        assert!(p.stats().physical_writes >= 1);
        assert_eq!(p.with_page(id, |b| b[0]).unwrap(), 5);
    }

    #[test]
    fn shrink_capacity_evicts_excess() {
        let p = pool(8);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        p.set_capacity(2).unwrap();
        assert_eq!(p.capacity(), 2);
        p.reset_stats();
        // Only the two most recently used pages can still be resident.
        let mut faults = 0;
        for &id in &ids {
            let before = p.stats().physical_reads;
            p.with_page(id, |_| ()).unwrap();
            if p.stats().physical_reads > before {
                faults += 1;
            }
        }
        assert!(faults >= 6, "expected at least 6 faults, got {faults}");
    }

    #[test]
    fn grow_capacity_reduces_faults() {
        let run = |cap: usize| -> u64 {
            let p = pool(cap);
            let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
            p.reset_stats();
            // Three cyclic sweeps: classic LRU-thrash workload.
            for _ in 0..3 {
                for &id in &ids {
                    p.with_page(id, |_| ()).unwrap();
                }
            }
            p.stats().physical_reads
        };
        assert!(run(4) > run(16), "bigger pool must fault less");
        assert_eq!(run(16), 0, "pool holding everything never faults");
    }

    #[test]
    fn shrunk_pool_enforces_new_capacity() {
        // Regression: shrinking used to leave old frames on the free
        // list, silently keeping the old effective capacity.
        let p = pool(1024);
        let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
        p.set_capacity(4).unwrap();
        p.clear().unwrap();
        p.reset_stats();
        // Three cyclic sweeps over 16 pages with 4 frames: pure thrash,
        // every access must miss.
        for _ in 0..3 {
            for &id in &ids {
                p.with_page(id, |_| ()).unwrap();
            }
        }
        assert_eq!(
            p.stats().physical_reads,
            48,
            "shrunken pool must behave exactly like a fresh 4-frame pool"
        );
    }

    #[test]
    fn logical_vs_physical_accounting() {
        let p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.reset_stats();
        // Alternating reads with a single frame: every access is a miss.
        for _ in 0..5 {
            p.with_page(a, |_| ()).unwrap();
            p.with_page(b, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.physical_reads, 10);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn retry_policy_recovers_transient_faults() {
        let disk = FaultyDisk::unlimited(MemDisk::new());
        let op_after_setup = 3; // allocate, allocate, eviction write
        disk.inject_at(op_after_setup, InjectedFault::Transient);
        let p = BufferPool::new(disk, 1);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |b| b[0] = 9).unwrap();
        let _b = p.allocate().unwrap(); // evicts `a` (dirty write, op 2)
                                        // Fault fires on the physical read of `a`; the default policy
                                        // retries and succeeds.
        assert_eq!(p.with_page(a, |b| b[0]).unwrap(), 9);
        assert_eq!(p.stats().retries, 1);
    }

    #[test]
    fn single_attempt_policy_surfaces_transient_faults() {
        let disk = FaultyDisk::unlimited(MemDisk::new());
        disk.inject_at(3, InjectedFault::Transient);
        let p = BufferPool::new(disk, 1);
        p.set_retry_policy(RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        });
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |b| b[0] = 9).unwrap();
        let _b = p.allocate().unwrap();
        assert!(matches!(
            p.with_page(a, |_| ()),
            Err(StoreError::Injected { transient: true })
        ));
        assert_eq!(p.stats().retries, 0);
    }

    #[test]
    fn corrupted_frame_is_detected_on_read() {
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |b| b[0] = 1).unwrap();
        p.clear().unwrap();
        // Flip a payload byte behind the pool's back.
        let mut frame = vec![0u8; FRAME_SIZE];
        mem.read_page(id, &mut frame).unwrap();
        frame[100] ^= 0xFF;
        mem.write_page(id, &frame).unwrap();
        match p.with_page(id, |_| ()) {
            Err(StoreError::Corrupt { page, .. }) => assert_eq!(page, Some(id)),
            other => panic!("expected corruption error, got {other:?}"),
        }
        assert_eq!(p.stats().checksum_failures, 1);
    }

    #[test]
    fn failed_read_does_not_leak_frames() {
        // Regression: a failed fetch used to leak its frame slot.
        let mem = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&mem), 2);
        let id = p.allocate().unwrap();
        p.clear().unwrap();
        let mut frame = vec![0u8; FRAME_SIZE];
        mem.read_page(id, &mut frame).unwrap();
        frame[0] = 1; // unsealed damage
        mem.write_page(id, &frame).unwrap();
        for _ in 0..10 {
            assert!(p.with_page(id, |_| ()).is_err());
        }
        // The pool still has working frames for healthy pages.
        let fresh = p.allocate().unwrap();
        p.with_page_mut(fresh, |b| b[0] = 2).unwrap();
        assert_eq!(p.with_page(fresh, |b| b[0]).unwrap(), 2);
    }

    #[test]
    fn overwrite_and_flush_pages_roundtrip() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        let payload = vec![0xA5u8; PAGE_SIZE];
        p.overwrite_page(id, &payload).unwrap();
        p.flush_pages(&[id]).unwrap();
        assert_eq!(p.stats().physical_writes, 1);
        p.clear().unwrap();
        assert!(p.with_page(id, |b| b.to_vec()).unwrap() == payload);
        assert!(matches!(
            p.overwrite_page(99, &payload),
            Err(StoreError::PageOutOfBounds(99))
        ));
    }
}
