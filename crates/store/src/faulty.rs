//! Fault injection for testing: a [`DiskBackend`] decorator that starts
//! failing after a configurable number of operations.
//!
//! Index builds and traversals must propagate storage errors as
//! `Result`s — never panic, never corrupt previously-written state. The
//! test suites drive every public API over a `FaultyDisk` with shrinking
//! budgets to verify exactly that.

use crate::{DiskBackend, PageId, Result, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps a backend and injects an I/O error once `budget` operations
/// (reads + writes + allocations) have succeeded.
pub struct FaultyDisk<B: DiskBackend> {
    inner: B,
    budget: AtomicU64,
}

impl<B: DiskBackend> FaultyDisk<B> {
    /// Allows `budget` successful operations before failing everything.
    pub fn new(inner: B, budget: u64) -> Self {
        FaultyDisk {
            inner,
            budget: AtomicU64::new(budget),
        }
    }

    /// Remaining successful operations.
    pub fn remaining(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    fn charge(&self) -> Result<()> {
        // Decrement-if-positive; at zero, fail.
        let mut now = self.budget.load(Ordering::Relaxed);
        loop {
            if now == 0 {
                return Err(StoreError::Io(std::io::Error::other(
                    "injected fault: operation budget exhausted",
                )));
            }
            match self.budget.compare_exchange_weak(
                now,
                now - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(v) => now = v,
            }
        }
    }
}

impl<B: DiskBackend> DiskBackend for FaultyDisk<B> {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.charge()?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.charge()?;
        self.inner.write_page(id, buf)
    }

    fn allocate(&self) -> Result<PageId> {
        self.charge()?;
        self.inner.allocate()
    }

    fn num_pages(&self) -> PageId {
        self.inner.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPool, MemDisk};

    #[test]
    fn fails_after_budget() {
        let disk = FaultyDisk::new(MemDisk::new(), 2);
        assert!(disk.allocate().is_ok());
        assert!(disk.allocate().is_ok());
        assert!(matches!(disk.allocate(), Err(StoreError::Io(_))));
        assert_eq!(disk.remaining(), 0);
    }

    #[test]
    fn pool_surfaces_injected_faults() {
        // Budget for the allocation plus one eviction write, then dead.
        let pool = BufferPool::new(FaultyDisk::new(MemDisk::new(), 3), 1);
        let a = pool.allocate().unwrap(); // 1 op
        pool.with_page_mut(a, |b| b[0] = 1).unwrap(); // cached, no disk op
        let b = pool.allocate().unwrap(); // 2 ops + eviction write = 3
        let _ = b;
        // Everything after the budget errors instead of panicking.
        assert!(pool.allocate().is_err());
        assert!(pool.with_page(a, |_| ()).is_err(), "fault must surface");
    }
}
