//! Fault injection for testing: a [`DiskBackend`] decorator with a
//! configurable failure model.
//!
//! Index builds and traversals must propagate storage errors as
//! `Result`s — never panic, never corrupt previously-written state. The
//! test suites drive every public API over a `FaultyDisk` to verify
//! exactly that. Two mechanisms compose:
//!
//! * an **operation budget** (the original model): after `budget`
//!   successful operations every further operation fails permanently,
//!   simulating a device that dies and stays dead;
//! * a **fault schedule**: specific operation indices are mapped to an
//!   [`InjectedFault`] — a transient error that succeeds on retry, a torn
//!   write that persists only a prefix of the frame and then "crashes" the
//!   device, a silent bit flip, or an outright crash. Schedules are plain
//!   `(index, fault)` pairs, so sweeps are deterministic and reproducible
//!   from a seed (see [`splitmix64`]).
//!
//! Injected failures surface as [`StoreError::Injected`] so tests can
//! assert *which* failure surfaced, distinguishable from real OS errors
//! and from checksum-detected corruption.

use crate::{DiskBackend, PageId, Result, StoreError, FRAME_SIZE};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A fault to inject at one scheduled operation index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fail this attempt with a transient error; the retried operation
    /// succeeds. Models interrupted syscalls and momentary device stalls.
    Transient,
    /// On a write: persist only the first `persist` bytes of the frame
    /// (the rest keeps its previous contents), then crash the device.
    /// Models power loss mid-write. On non-write operations this behaves
    /// like [`InjectedFault::Crash`].
    TornWrite {
        /// Bytes of the frame that reach the media before the crash.
        persist: usize,
    },
    /// On a write: flip one bit (index taken modulo the frame length in
    /// bits) and report success. On a read: flip the bit in the returned
    /// buffer. Silent — only the pool's checksum verification can catch
    /// it. Models media bit rot.
    BitFlip {
        /// Bit index within the frame.
        bit: usize,
    },
    /// Fail this and every subsequent operation permanently. Models a
    /// process or device crash; tests then "reopen" by building a fresh
    /// pool over the surviving inner backend.
    Crash,
}

/// Wraps a backend and injects faults according to a budget and a
/// deterministic per-operation schedule.
pub struct FaultyDisk<B: DiskBackend> {
    inner: B,
    budget: AtomicU64,
    ops: AtomicU64,
    crashed: AtomicBool,
    plan: Mutex<BTreeMap<u64, InjectedFault>>,
}

/// The outcome [`FaultyDisk`] decided for one operation.
enum Decision {
    Proceed,
    ProceedBitFlip(usize),
    Torn(usize),
    Fail(StoreError),
}

impl<B: DiskBackend> FaultyDisk<B> {
    /// Allows `budget` successful operations (reads + writes +
    /// allocations) before failing everything; `u64::MAX` is effectively
    /// unlimited.
    pub fn new(inner: B, budget: u64) -> Self {
        FaultyDisk {
            inner,
            budget: AtomicU64::new(budget),
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            plan: Mutex::new(BTreeMap::new()),
        }
    }

    /// A disk with no budget limit; faults come only from the schedule.
    pub fn unlimited(inner: B) -> Self {
        Self::new(inner, u64::MAX)
    }

    /// Schedules `fault` to fire on the `op`-th operation (0-based, in
    /// the order operations reach this disk). Scheduling over an existing
    /// entry replaces it.
    pub fn inject_at(&self, op: u64, fault: InjectedFault) {
        self.plan.lock().insert(op, fault);
    }

    /// Removes all scheduled faults (the budget and crashed state stay).
    pub fn clear_faults(&self) {
        self.plan.lock().clear();
    }

    /// Number of operations observed so far (including failed ones).
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Remaining successful operations under the budget.
    pub fn remaining(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Whether a [`InjectedFault::Crash`] or torn write has fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Decides the fate of the current operation; `is_write` selects the
    /// write-specific behavior of torn writes and bit flips.
    fn decide(&self, is_write: bool) -> Decision {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.crashed.load(Ordering::Relaxed) {
            return Decision::Fail(StoreError::Injected { transient: false });
        }
        if let Some(fault) = self.plan.lock().remove(&op) {
            match fault {
                InjectedFault::Transient => {
                    return Decision::Fail(StoreError::Injected { transient: true });
                }
                InjectedFault::TornWrite { persist } if is_write => {
                    self.crashed.store(true, Ordering::Relaxed);
                    return Decision::Torn(persist.min(FRAME_SIZE));
                }
                InjectedFault::TornWrite { .. } | InjectedFault::Crash => {
                    self.crashed.store(true, Ordering::Relaxed);
                    return Decision::Fail(StoreError::Injected { transient: false });
                }
                InjectedFault::BitFlip { bit } => {
                    return Decision::ProceedBitFlip(bit % (FRAME_SIZE * 8));
                }
            }
        }
        match self.charge() {
            Ok(()) => Decision::Proceed,
            Err(e) => Decision::Fail(e),
        }
    }

    fn charge(&self) -> Result<()> {
        // Decrement-if-positive; at zero, fail.
        let mut now = self.budget.load(Ordering::Relaxed);
        loop {
            if now == 0 {
                return Err(StoreError::Injected { transient: false });
            }
            match self.budget.compare_exchange_weak(
                now,
                now - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(v) => now = v,
            }
        }
    }
}

impl<B: DiskBackend> DiskBackend for FaultyDisk<B> {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        match self.decide(false) {
            Decision::Proceed => self.inner.read_page(id, buf),
            Decision::ProceedBitFlip(bit) => {
                self.inner.read_page(id, buf)?;
                buf[bit / 8] ^= 1 << (bit % 8);
                Ok(())
            }
            Decision::Torn(_) => unreachable!("torn faults only fire on writes"),
            Decision::Fail(e) => Err(e),
        }
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        match self.decide(true) {
            Decision::Proceed => self.inner.write_page(id, buf),
            Decision::ProceedBitFlip(bit) => {
                let mut damaged = buf.to_vec();
                damaged[bit / 8] ^= 1 << (bit % 8);
                self.inner.write_page(id, &damaged)
            }
            Decision::Torn(persist) => {
                // Persist a prefix of the new frame over the old contents,
                // then report the crash.
                let mut frame = vec![0u8; FRAME_SIZE];
                self.inner.read_page(id, &mut frame)?;
                frame[..persist].copy_from_slice(&buf[..persist]);
                self.inner.write_page(id, &frame)?;
                Err(StoreError::Injected { transient: false })
            }
            Decision::Fail(e) => Err(e),
        }
    }

    fn allocate(&self) -> Result<PageId> {
        match self.decide(false) {
            Decision::Proceed | Decision::ProceedBitFlip(_) => self.inner.allocate(),
            Decision::Torn(_) => unreachable!("torn faults only fire on writes"),
            Decision::Fail(e) => Err(e),
        }
    }

    fn num_pages(&self) -> PageId {
        self.inner.num_pages()
    }

    /// The readahead channel deliberately bypasses [`decide`]: fault
    /// schedules are keyed by *demand*-operation index, and the whole
    /// point of the prefetcher is that speculative reads may be
    /// reordered or elided without changing the demand sequence. If
    /// batch reads advanced the op counter, enabling readahead would
    /// shift every scheduled fault onto a different operation. Neither
    /// the schedule nor the budget sees a batch read — but a crashed
    /// device stays dead for it, so readahead can never resurrect pages
    /// from media that demand accesses are guaranteed to fail on.
    ///
    /// [`decide`]: FaultyDisk::decide
    fn read_batch(&self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(StoreError::Injected { transient: false });
        }
        self.inner.read_batch(ids, out)
    }
}

/// SplitMix64: a tiny deterministic mixer for deriving fault positions
/// from a seed in sweep tests, so this crate needs no RNG dependency.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPool, MemDisk, PAGE_SIZE};
    use std::sync::Arc;

    #[test]
    fn fails_after_budget() {
        let disk = FaultyDisk::new(MemDisk::new(), 2);
        assert!(disk.allocate().is_ok());
        assert!(disk.allocate().is_ok());
        assert!(matches!(
            disk.allocate(),
            Err(StoreError::Injected { transient: false })
        ));
        assert_eq!(disk.remaining(), 0);
    }

    #[test]
    fn pool_surfaces_injected_faults() {
        // Budget for the allocation plus one eviction write, then dead.
        let pool = BufferPool::new(FaultyDisk::new(MemDisk::new(), 3), 1);
        let a = pool.allocate().unwrap(); // 1 op
        pool.with_page_mut(a, |b| b[0] = 1).unwrap(); // cached, no disk op
        let b = pool.allocate().unwrap(); // 2 ops + eviction write = 3
        let _ = b;
        // Everything after the budget errors instead of panicking.
        assert!(pool.allocate().is_err());
        assert!(pool.with_page(a, |_| ()).is_err(), "fault must surface");
    }

    #[test]
    fn transient_fault_succeeds_on_retry() {
        let disk = FaultyDisk::unlimited(MemDisk::new());
        let id = disk.allocate().unwrap();
        disk.inject_at(disk.op_count(), InjectedFault::Transient);
        let frame = vec![7u8; FRAME_SIZE];
        assert!(matches!(
            disk.write_page(id, &frame),
            Err(StoreError::Injected { transient: true })
        ));
        disk.write_page(id, &frame).unwrap();
        let mut back = vec![0u8; FRAME_SIZE];
        disk.read_page(id, &mut back).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn torn_write_persists_prefix_then_crashes() {
        let mem = Arc::new(MemDisk::new());
        let disk = FaultyDisk::unlimited(Arc::clone(&mem));
        let id = disk.allocate().unwrap();
        disk.write_page(id, &vec![1u8; FRAME_SIZE]).unwrap();
        disk.inject_at(disk.op_count(), InjectedFault::TornWrite { persist: 100 });
        let err = disk.write_page(id, &vec![2u8; FRAME_SIZE]);
        assert!(matches!(
            err,
            Err(StoreError::Injected { transient: false })
        ));
        assert!(disk.is_crashed());
        // Every later operation fails too.
        assert!(disk.allocate().is_err());
        // The surviving media holds the torn mix.
        let mut frame = vec![0u8; FRAME_SIZE];
        mem.read_page(id, &mut frame).unwrap();
        assert!(frame[..100].iter().all(|&b| b == 2));
        assert!(frame[100..].iter().all(|&b| b == 1));
    }

    #[test]
    fn bit_flip_is_silent_and_persisted() {
        let mem = Arc::new(MemDisk::new());
        let disk = FaultyDisk::unlimited(Arc::clone(&mem));
        let id = disk.allocate().unwrap();
        let bit = 8 * (PAGE_SIZE / 2) + 3;
        disk.inject_at(disk.op_count(), InjectedFault::BitFlip { bit });
        disk.write_page(id, &vec![0u8; FRAME_SIZE]).unwrap();
        let mut frame = vec![0u8; FRAME_SIZE];
        mem.read_page(id, &mut frame).unwrap();
        assert_eq!(frame[PAGE_SIZE / 2], 1 << 3);
    }

    #[test]
    fn read_batch_bypasses_schedule_but_respects_crash() {
        let disk = FaultyDisk::unlimited(MemDisk::new());
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        let ops_before = disk.op_count();
        // A fault scheduled on the very next operation must NOT be
        // absorbed (or even seen) by a batch read.
        disk.inject_at(ops_before, InjectedFault::Transient);
        let mut out = vec![0u8; 2 * FRAME_SIZE];
        disk.read_batch(&[a, b], &mut out).unwrap();
        assert_eq!(
            disk.op_count(),
            ops_before,
            "batch reads must not advance the fault schedule"
        );
        // The scheduled fault still fires on the next demand operation.
        let mut buf = vec![0u8; FRAME_SIZE];
        assert!(matches!(
            disk.read_page(a, &mut buf),
            Err(StoreError::Injected { transient: true })
        ));
        // A crashed device fails batch reads like everything else.
        disk.inject_at(disk.op_count(), InjectedFault::Crash);
        let _ = disk.read_page(a, &mut buf);
        assert!(disk.is_crashed());
        let mut dead = vec![0u8; FRAME_SIZE];
        assert!(matches!(
            disk.read_batch(&[a], &mut dead),
            Err(StoreError::Injected { transient: false })
        ));
    }

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
