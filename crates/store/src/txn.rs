//! Transactions: a write side-buffer over the pool, committed atomically
//! through the [`Journal`].
//!
//! A [`Txn`] implements [`PageStore`], so any code generic over page
//! access (the node codecs, the index write paths) runs unchanged inside
//! a transaction. Reads see the transaction's own writes first and fall
//! through to the pool; writes are buffered copy-on-write and touch
//! neither the pool's frames nor the disk until [`Txn::commit`], which
//! hands the full batch to the journal's all-or-nothing protocol. This
//! sidesteps every steal/no-steal eviction hazard: an uncommitted page
//! image simply never exists outside the buffer.
//!
//! Dropping a transaction without committing discards its writes. Pages
//! allocated inside an abandoned transaction remain allocated (zeroed and
//! unreferenced) — page ids are append-only in this substrate, so leaked
//! pages waste space but never harm correctness.

use crate::journal::Journal;
use crate::pool::PageStore;
use crate::{BufferPool, PageId, Result, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;

/// An uncommitted batch of page writes against a pool.
pub struct Txn<'p> {
    pool: &'p BufferPool,
    journal: Journal,
    writes: Mutex<HashMap<PageId, Box<[u8]>>>,
}

impl<'p> Txn<'p> {
    /// Starts an empty transaction writing through `journal`.
    pub fn begin(pool: &'p BufferPool, journal: Journal) -> Txn<'p> {
        Txn {
            pool,
            journal,
            writes: Mutex::new(HashMap::new()),
        }
    }

    /// Number of distinct pages written so far.
    pub fn page_count(&self) -> usize {
        self.writes.lock().len()
    }

    /// Atomically applies every buffered write via the journal. On `Ok`
    /// the batch is durable; on `Err` the on-disk state is either fully
    /// rolled forward by the next [`Journal::open`] or untouched.
    pub fn commit(self) -> Result<()> {
        let writes = self.writes.into_inner();
        if writes.is_empty() {
            return Ok(());
        }
        let mut batch: Vec<(PageId, Box<[u8]>)> = writes.into_iter().collect();
        batch.sort_by_key(|(page, _)| *page);
        self.journal.commit(self.pool, &batch)
    }
}

impl PageStore for Txn<'_> {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let writes = self.writes.lock();
        if let Some(image) = writes.get(&id) {
            return Ok(f(image));
        }
        drop(writes);
        self.pool.with_page(id, f)
    }

    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut writes = self.writes.lock();
        if let Some(image) = writes.get_mut(&id) {
            return Ok(f(image));
        }
        // Copy-on-write: pull the current image from the pool, mutate the
        // private copy.
        let mut image = self.pool.with_page(id, |b| b.to_vec().into_boxed_slice())?;
        let out = f(&mut image);
        writes.insert(id, image);
        Ok(out)
    }

    fn allocate(&self) -> Result<PageId> {
        let id = self.pool.allocate()?;
        self.writes
            .lock()
            .insert(id, vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDisk, StoreError};

    fn setup() -> (BufferPool, Journal) {
        let pool = BufferPool::new(MemDisk::new(), 8);
        let journal = Journal::create(&pool).unwrap();
        (pool, journal)
    }

    #[test]
    fn writes_are_invisible_until_commit() {
        let (pool, journal) = setup();
        let page = pool.allocate().unwrap();
        let txn = Txn::begin(&pool, journal);
        txn.with_page_mut(page, |b| b[0] = 9).unwrap();
        // The txn sees its own write; the pool does not.
        assert_eq!(txn.with_page(page, |b| b[0]).unwrap(), 9);
        assert_eq!(pool.with_page(page, |b| b[0]).unwrap(), 0);
        txn.commit().unwrap();
        assert_eq!(pool.with_page(page, |b| b[0]).unwrap(), 9);
    }

    #[test]
    fn dropped_txn_changes_nothing() {
        let (pool, journal) = setup();
        let page = pool.allocate().unwrap();
        {
            let txn = Txn::begin(&pool, journal);
            txn.with_page_mut(page, |b| b[0] = 9).unwrap();
        }
        assert_eq!(pool.with_page(page, |b| b[0]).unwrap(), 0);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let (pool, journal) = setup();
        let before = pool.stats();
        let txn = Txn::begin(&pool, journal);
        assert_eq!(txn.page_count(), 0);
        txn.commit().unwrap();
        assert_eq!(pool.stats().physical_writes, before.physical_writes);
    }

    #[test]
    fn txn_allocate_is_visible_inside() {
        let (pool, journal) = setup();
        let txn = Txn::begin(&pool, journal);
        let page = txn.allocate().unwrap();
        txn.with_page_mut(page, |b| b[1] = 4).unwrap();
        assert_eq!(txn.with_page(page, |b| b[1]).unwrap(), 4);
        txn.commit().unwrap();
        assert_eq!(pool.with_page(page, |b| b[1]).unwrap(), 4);
    }

    #[test]
    fn read_through_misses_go_to_pool() {
        let (pool, journal) = setup();
        let page = pool.allocate().unwrap();
        pool.with_page_mut(page, |b| b[3] = 7).unwrap();
        let txn = Txn::begin(&pool, journal);
        assert_eq!(txn.with_page(page, |b| b[3]).unwrap(), 7);
        assert!(matches!(
            txn.with_page(999, |_| ()),
            Err(StoreError::PageOutOfBounds(999))
        ));
    }
}
