//! Transactions: a write side-buffer over the pool, committed atomically
//! through the [`Journal`].
//!
//! A [`Txn`] implements [`PageStore`], so any code generic over page
//! access (the node codecs, the index write paths) runs unchanged inside
//! a transaction. Reads see the transaction's own writes first and fall
//! through to the pool; writes are buffered copy-on-write and touch
//! neither the pool's frames nor the disk until [`Txn::commit`], which
//! hands the full batch to the journal's all-or-nothing protocol. This
//! sidesteps every steal/no-steal eviction hazard: an uncommitted page
//! image simply never exists outside the buffer.
//!
//! Dropping a transaction without committing discards its writes. Pages
//! allocated inside an abandoned transaction remain allocated (zeroed and
//! unreferenced) — page ids are append-only in this substrate, so leaked
//! pages waste space but never harm correctness.

use crate::journal::Journal;
use crate::pool::PageStore;
use crate::versioned::{VersionInfo, VersionedStore};
use crate::{BufferPool, PageId, Result, StoreError, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How the transaction's batch reaches disk at commit.
enum Mode {
    /// Direct journal commit: images overwrite their home pages.
    Plain(Journal),
    /// MVCC commit through a [`VersionedStore`]: mutated pages are
    /// copied-on-write to fresh physical pages and published as the next
    /// version; reads translate through `base`, the latest version at
    /// begin time.
    Versioned {
        store: Arc<VersionedStore>,
        base: Arc<VersionInfo>,
    },
}

/// An uncommitted batch of page writes against a pool.
pub struct Txn<'p> {
    pool: &'p BufferPool,
    mode: Mode,
    writes: Mutex<HashMap<PageId, Box<[u8]>>>,
    /// Pages allocated inside this transaction. Only consulted by the
    /// versioned commit path (fresh pages are written in place: no older
    /// version can reference them).
    fresh: Mutex<HashSet<PageId>>,
}

impl<'p> Txn<'p> {
    /// Starts an empty transaction writing through `journal`.
    pub fn begin(pool: &'p BufferPool, journal: Journal) -> Txn<'p> {
        Txn {
            pool,
            mode: Mode::Plain(journal),
            writes: Mutex::new(HashMap::new()),
            fresh: Mutex::new(HashSet::new()),
        }
    }

    /// Starts an empty transaction against a [`VersionedStore`]. Reads
    /// translate through the latest version at begin time; commit
    /// publishes the batch as the next version via copy-on-write.
    pub fn begin_versioned(store: &'p Arc<VersionedStore>) -> Result<Txn<'p>> {
        let base = store.latest_info();
        Ok(Txn {
            pool: store.pool(),
            mode: Mode::Versioned {
                store: Arc::clone(store),
                base,
            },
            writes: Mutex::new(HashMap::new()),
            fresh: Mutex::new(HashSet::new()),
        })
    }

    /// Number of distinct pages written so far.
    pub fn page_count(&self) -> usize {
        self.writes.lock().len()
    }

    /// The version this transaction reads through, when versioned.
    pub fn base_version(&self) -> Option<u32> {
        match &self.mode {
            Mode::Plain(_) => None,
            Mode::Versioned { base, .. } => Some(base.version()),
        }
    }

    /// Atomically applies every buffered write. Plain transactions go
    /// through the journal's all-or-nothing protocol onto their home
    /// pages; versioned transactions publish a new version (see
    /// [`Txn::commit_versioned`] to learn its number).
    pub fn commit(self) -> Result<()> {
        match self.mode {
            Mode::Plain(journal) => {
                let writes = self.writes.into_inner();
                if writes.is_empty() {
                    return Ok(());
                }
                let mut batch: Vec<(PageId, Box<[u8]>)> = writes.into_iter().collect();
                batch.sort_by_key(|(page, _)| *page);
                journal.commit(self.pool, &batch)
            }
            Mode::Versioned { store, base } => store
                .commit_txn(
                    self.writes.into_inner(),
                    &self.fresh.into_inner(),
                    base.version(),
                )
                .map(|_| ()),
        }
    }

    /// Like [`Txn::commit`], but returns the committed version number.
    /// Errors on a plain (unversioned) transaction.
    pub fn commit_versioned(self) -> Result<u32> {
        match self.mode {
            Mode::Plain(_) => Err(StoreError::corrupt("transaction is not versioned")),
            Mode::Versioned { store, base } => store.commit_txn(
                self.writes.into_inner(),
                &self.fresh.into_inner(),
                base.version(),
            ),
        }
    }

    /// Physical page backing `id` for this transaction's reads: the
    /// base-version translation when versioned, identity otherwise.
    fn read_page(&self, id: PageId) -> PageId {
        match &self.mode {
            Mode::Plain(_) => id,
            Mode::Versioned { base, .. } => base.translate(id),
        }
    }
}

impl PageStore for Txn<'_> {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let writes = self.writes.lock();
        if let Some(image) = writes.get(&id) {
            return Ok(f(image));
        }
        drop(writes);
        self.pool.with_page(self.read_page(id), f)
    }

    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut writes = self.writes.lock();
        if let Some(image) = writes.get_mut(&id) {
            return Ok(f(image));
        }
        // Copy-on-write: pull the current image from the pool, mutate the
        // private copy.
        let mut image = self
            .pool
            .with_page(self.read_page(id), |b| b.to_vec().into_boxed_slice())?;
        let out = f(&mut image);
        writes.insert(id, image);
        Ok(out)
    }

    fn allocate(&self) -> Result<PageId> {
        let id = self.pool.allocate()?;
        self.writes
            .lock()
            .insert(id, vec![0u8; PAGE_SIZE].into_boxed_slice());
        self.fresh.lock().insert(id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemDisk, StoreError};

    fn setup() -> (BufferPool, Journal) {
        let pool = BufferPool::new(MemDisk::new(), 8);
        let journal = Journal::create(&pool).unwrap();
        (pool, journal)
    }

    #[test]
    fn writes_are_invisible_until_commit() {
        let (pool, journal) = setup();
        let page = pool.allocate().unwrap();
        let txn = Txn::begin(&pool, journal);
        txn.with_page_mut(page, |b| b[0] = 9).unwrap();
        // The txn sees its own write; the pool does not.
        assert_eq!(txn.with_page(page, |b| b[0]).unwrap(), 9);
        assert_eq!(pool.with_page(page, |b| b[0]).unwrap(), 0);
        txn.commit().unwrap();
        assert_eq!(pool.with_page(page, |b| b[0]).unwrap(), 9);
    }

    #[test]
    fn dropped_txn_changes_nothing() {
        let (pool, journal) = setup();
        let page = pool.allocate().unwrap();
        {
            let txn = Txn::begin(&pool, journal);
            txn.with_page_mut(page, |b| b[0] = 9).unwrap();
        }
        assert_eq!(pool.with_page(page, |b| b[0]).unwrap(), 0);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let (pool, journal) = setup();
        let before = pool.stats();
        let txn = Txn::begin(&pool, journal);
        assert_eq!(txn.page_count(), 0);
        txn.commit().unwrap();
        assert_eq!(pool.stats().physical_writes, before.physical_writes);
    }

    #[test]
    fn txn_allocate_is_visible_inside() {
        let (pool, journal) = setup();
        let txn = Txn::begin(&pool, journal);
        let page = txn.allocate().unwrap();
        txn.with_page_mut(page, |b| b[1] = 4).unwrap();
        assert_eq!(txn.with_page(page, |b| b[1]).unwrap(), 4);
        txn.commit().unwrap();
        assert_eq!(pool.with_page(page, |b| b[1]).unwrap(), 4);
    }

    #[test]
    fn read_through_misses_go_to_pool() {
        let (pool, journal) = setup();
        let page = pool.allocate().unwrap();
        pool.with_page_mut(page, |b| b[3] = 7).unwrap();
        let txn = Txn::begin(&pool, journal);
        assert_eq!(txn.with_page(page, |b| b[3]).unwrap(), 7);
        assert!(matches!(
            txn.with_page(999, |_| ()),
            Err(StoreError::PageOutOfBounds(999))
        ));
    }
}
