//! An intrusive doubly-linked LRU list over frame indices.
//!
//! The buffer pool stores frames in a `Vec`; this list orders those frame
//! *indices* from most- to least-recently used with O(1) touch/evict, which
//! keeps the pool an exact LRU (matching the paper's SHORE configuration)
//! rather than an approximation.

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Link {
    prev: u32,
    next: u32,
    in_list: bool,
}

/// LRU ordering over the integers `0..capacity`.
pub(crate) struct LruList {
    links: Vec<Link>,
    head: u32, // most recently used
    tail: u32, // least recently used
    len: usize,
}

impl LruList {
    pub(crate) fn new(capacity: usize) -> Self {
        LruList {
            links: vec![
                Link {
                    prev: NIL,
                    next: NIL,
                    in_list: false
                };
                capacity
            ],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of indices currently in the list. With pinned frames kept
    /// out of the list, this can be less than the shard's resident count.
    #[cfg_attr(not(test), allow(dead_code))] // part of the LRU API, exercised in tests
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Grows the index space (new indices start out not in the list).
    pub(crate) fn grow_to(&mut self, capacity: usize) {
        if capacity > self.links.len() {
            self.links.resize(
                capacity,
                Link {
                    prev: NIL,
                    next: NIL,
                    in_list: false,
                },
            );
        }
    }

    /// Marks `idx` most-recently-used, inserting it if absent.
    pub(crate) fn touch(&mut self, idx: u32) {
        if self.links[idx as usize].in_list {
            if self.head == idx {
                return;
            }
            self.unlink(idx);
        }
        // Push at head.
        let link = &mut self.links[idx as usize];
        link.prev = NIL;
        link.next = self.head;
        link.in_list = true;
        if self.head != NIL {
            self.links[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
    }

    /// Inserts `idx` at the *cold* (least-recently-used) end if absent;
    /// an index already in the list keeps its position. Prefetched frames
    /// enter here so that speculative readahead can never push a demanded
    /// page out of the hot end — a scan of never-demanded prefetches is
    /// first-out (scan resistance).
    pub(crate) fn push_cold(&mut self, idx: u32) {
        if self.links[idx as usize].in_list {
            return;
        }
        let link = &mut self.links[idx as usize];
        link.prev = self.tail;
        link.next = NIL;
        link.in_list = true;
        if self.tail != NIL {
            self.links[self.tail as usize].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
        self.len += 1;
    }

    /// The least-recently-used index — the next eviction victim — without
    /// removing it. The prefetch pump peeks here so it can stall rather
    /// than evict one of its own not-yet-claimed frames.
    pub(crate) fn peek_lru(&self) -> Option<u32> {
        if self.tail == NIL {
            None
        } else {
            Some(self.tail)
        }
    }

    /// Removes and returns the least-recently-used index, if any.
    pub(crate) fn pop_lru(&mut self) -> Option<u32> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.unlink(idx);
        Some(idx)
    }

    /// Removes `idx` from the list if present.
    #[cfg_attr(not(test), allow(dead_code))] // part of the LRU API, exercised in tests
    pub(crate) fn remove(&mut self, idx: u32) {
        if self.links[idx as usize].in_list {
            self.unlink(idx);
        }
    }

    fn unlink(&mut self, idx: u32) {
        let Link { prev, next, .. } = self.links[idx as usize];
        if prev != NIL {
            self.links[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.links[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let link = &mut self.links[idx as usize];
        link.prev = NIL;
        link.next = NIL;
        link.in_list = false;
        self.len -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_least_recently_used() {
        let mut lru = LruList::new(4);
        lru.touch(0);
        lru.touch(1);
        lru.touch(2);
        lru.touch(0); // 0 becomes MRU; order (MRU..LRU) = 0, 2, 1
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(0));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn touch_is_idempotent_at_head() {
        let mut lru = LruList::new(2);
        lru.touch(1);
        lru.touch(1);
        lru.touch(1);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn remove_middle_element() {
        let mut lru = LruList::new(3);
        lru.touch(0);
        lru.touch(1);
        lru.touch(2); // order: 2, 1, 0
        lru.remove(1);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.pop_lru(), Some(0));
        assert_eq!(lru.pop_lru(), Some(2));
    }

    #[test]
    fn remove_head_and_tail() {
        let mut lru = LruList::new(3);
        lru.touch(0);
        lru.touch(1);
        lru.touch(2);
        lru.remove(2); // head
        lru.remove(0); // tail
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn grow_preserves_contents() {
        let mut lru = LruList::new(1);
        lru.touch(0);
        lru.grow_to(8);
        lru.touch(7);
        assert_eq!(lru.pop_lru(), Some(0));
        assert_eq!(lru.pop_lru(), Some(7));
    }

    #[test]
    fn push_cold_inserts_at_lru_end() {
        let mut lru = LruList::new(4);
        lru.touch(0);
        lru.touch(1); // order (MRU..LRU): 1, 0
        lru.push_cold(2); // order: 1, 0, 2
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(0));
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn push_cold_keeps_existing_position() {
        let mut lru = LruList::new(4);
        lru.touch(0);
        lru.touch(1); // order: 1, 0
        lru.push_cold(1); // 1 is resident at the head: position unchanged
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.pop_lru(), Some(0));
        assert_eq!(lru.pop_lru(), Some(1));
        // Into an empty list, push_cold is both head and tail.
        lru.push_cold(3);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.pop_lru(), Some(3));
    }

    #[test]
    fn interleaved_random_operations_match_reference_model() {
        // Compare against a naive Vec-based LRU model.
        let mut lru = LruList::new(16);
        let mut model: Vec<u32> = vec![]; // front = MRU
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..2000 {
            match rng() % 3 {
                0 | 1 => {
                    let idx = rng() % 16;
                    lru.touch(idx);
                    model.retain(|&x| x != idx);
                    model.insert(0, idx);
                }
                _ => {
                    let got = lru.pop_lru();
                    let want = model.pop();
                    assert_eq!(got, want);
                }
            }
            assert_eq!(lru.len(), model.len());
        }
    }
}
