//! A redo journal giving multi-page updates all-or-nothing semantics.
//!
//! Structural index updates (an MBRQT bucket split, an R*-tree split with
//! forced reinsertion) rewrite many pages; a crash part-way through would
//! otherwise leave the tree unreadable. The journal implements classic
//! redo-only write-ahead logging with full-page after-images:
//!
//! 1. every page image in the batch is appended to a chain of journal
//!    data pages and flushed;
//! 2. the journal header is marked `COMMITTED` and flushed — **this
//!    single page write is the atomic commit point**;
//! 3. the images are copied to their home pages and flushed;
//! 4. the header is marked `EMPTY` again and flushed.
//!
//! A crash before step 2 leaves the header `EMPTY`: recovery discards the
//! partial chain and the tree keeps its old state. A crash after step 2
//! finds the header `COMMITTED`: recovery replays the images (idempotent
//! full-page writes, so replaying twice is harmless) and then clears the
//! header. Torn writes inside the chain or header are caught by the
//! pool's frame checksums.
//!
//! Each index owns one journal whose header page is allocated immediately
//! after the index's meta page, so `open` can find it without any
//! discoverable state of its own. Data-chain pages are reused across
//! commits and the chain only grows.

use crate::checksum::{crc32_finish, crc32_update, CRC_INIT};
use crate::{BufferPool, PageId, Result, StoreError, INVALID_PAGE, PAGE_SIZE};

const JOURNAL_MAGIC: &[u8; 8] = b"ANNJRNL1";
const JDATA_MAGIC: u32 = 0x1A2B_3C4D;
const STATE_EMPTY: u32 = 0;
const STATE_COMMITTED: u32 = 0xC033_117E;

/// Bytes of payload each data-chain page carries after its
/// `next`-pointer + magic header.
const DATA_CAPACITY: usize = PAGE_SIZE - 8;

/// Encoded size of one journal record: page id, CRC32, full page image.
pub const RECORD_SIZE: usize = 8 + PAGE_SIZE;

/// Encodes one `(page, after-image)` record for the journal stream.
///
/// The CRC covers the page id and the image, so replay can tell a record
/// that was fully persisted from one that was torn mid-write.
///
/// # Panics
///
/// Panics if `image` is not exactly [`PAGE_SIZE`] bytes.
pub fn encode_record(page: PageId, image: &[u8]) -> Vec<u8> {
    assert_eq!(image.len(), PAGE_SIZE, "journal records hold full pages");
    let mut out = Vec::with_capacity(RECORD_SIZE);
    out.extend_from_slice(&page.to_le_bytes());
    let crc = crc32_finish(crc32_update(
        crc32_update(CRC_INIT, &page.to_le_bytes()),
        image,
    ));
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(image);
    out
}

/// Decodes (and CRC-checks) one record from the front of `bytes`,
/// returning the target page and its after-image.
pub fn decode_record(bytes: &[u8]) -> Result<(PageId, &[u8])> {
    if bytes.len() < RECORD_SIZE {
        return Err(StoreError::corrupt("journal record truncated"));
    }
    let page = PageId::from_le_bytes(bytes[0..4].try_into().unwrap());
    let stored = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let image = &bytes[8..RECORD_SIZE];
    let crc = crc32_finish(crc32_update(crc32_update(CRC_INIT, &bytes[0..4]), image));
    if crc != stored {
        return Err(StoreError::corrupt("journal record checksum mismatch"));
    }
    Ok((page, image))
}

/// What [`Journal::open`] found and did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recovery {
    /// The journal was empty: the last commit (if any) fully completed.
    Clean,
    /// A committed batch had not fully reached its home pages; its
    /// `pages` after-images were replayed.
    Replayed {
        /// Number of page images replayed.
        pages: u64,
    },
    /// The header was torn or unreadable, meaning a crash hit before the
    /// commit point; the partial batch was discarded.
    Discarded,
}

/// Handle to an on-disk journal: just the id of its header page.
///
/// All journal state lives on disk (reached through the pool), so the
/// handle is freely copyable and a reopened index reconstructs it from
/// the meta page id alone.
#[derive(Clone, Copy, Debug)]
pub struct Journal {
    header: PageId,
}

impl Journal {
    /// Allocates and initializes an empty journal, returning its handle.
    pub fn create(pool: &BufferPool) -> Result<Journal> {
        let header = pool.allocate()?;
        let journal = Journal { header };
        journal.write_header(pool, STATE_EMPTY, 0, INVALID_PAGE)?;
        pool.flush_pages(&[header])?;
        Ok(journal)
    }

    /// Opens the journal at `header`, running recovery: replays a
    /// committed-but-unapplied batch, or discards a partial one.
    pub fn open(pool: &BufferPool, header: PageId) -> Result<(Journal, Recovery)> {
        let journal = Journal { header };
        let Some((state, num_records, first_data)) = journal.read_header(pool)? else {
            // Torn or foreign header: the crash hit before the commit
            // point, so the partial batch is abandoned.
            journal.write_header(pool, STATE_EMPTY, 0, INVALID_PAGE)?;
            pool.flush_pages(&[header])?;
            return Ok((journal, Recovery::Discarded));
        };
        if state != STATE_COMMITTED {
            // EMPTY (or an unknown state from a half-applied header
            // update, which the frame checksum makes vanishingly
            // unlikely): nothing to do.
            return Ok((journal, Recovery::Clean));
        }
        let stream = journal.read_stream(pool, first_data, num_records as usize * RECORD_SIZE)?;
        let mut homes = Vec::with_capacity(num_records as usize);
        for i in 0..num_records as usize {
            let (page, image) = decode_record(&stream[i * RECORD_SIZE..])?;
            pool.overwrite_page(page, image)?;
            homes.push(page);
        }
        pool.flush_pages(&homes)?;
        journal.write_header(pool, STATE_EMPTY, 0, first_data)?;
        pool.flush_pages(&[header])?;
        Ok((
            journal,
            Recovery::Replayed {
                pages: num_records as u64,
            },
        ))
    }

    /// Page id of the journal header.
    pub fn header_page(&self) -> PageId {
        self.header
    }

    /// Durably applies `writes` (sorted `(page, after-image)` pairs) with
    /// all-or-nothing semantics. On success every image is on its home
    /// page and flushed. On error nothing is guaranteed to have applied —
    /// but reopening via [`Journal::open`] always yields either the full
    /// batch or none of it.
    pub(crate) fn commit(&self, pool: &BufferPool, writes: &[(PageId, Box<[u8]>)]) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        // 1. Serialize the batch into the data-page chain.
        let mut stream = Vec::with_capacity(writes.len() * RECORD_SIZE);
        for (page, image) in writes {
            stream.extend_from_slice(&encode_record(*page, image));
        }
        let pages_needed = stream.len().div_ceil(DATA_CAPACITY);
        let first_data = match self.read_header(pool)? {
            Some((_, _, first)) => first,
            None => INVALID_PAGE,
        };
        // Reuse the existing chain, extending it if this batch is larger
        // than any before.
        let mut chain: Vec<PageId> = Vec::with_capacity(pages_needed);
        let mut tails: Vec<PageId> = Vec::with_capacity(pages_needed);
        let mut cursor = first_data;
        while cursor != INVALID_PAGE && chain.len() < pages_needed {
            chain.push(cursor);
            let next = match pool.with_page(cursor, |b| {
                if u32::from_le_bytes(b[4..8].try_into().unwrap()) == JDATA_MAGIC {
                    PageId::from_le_bytes(b[0..4].try_into().unwrap())
                } else {
                    INVALID_PAGE
                }
            }) {
                Ok(next) => next,
                // A rotted old chain page is fine to recycle: its
                // contents are about to be overwritten.
                Err(StoreError::Corrupt { .. }) => INVALID_PAGE,
                Err(e) => return Err(e),
            };
            tails.push(next);
            cursor = next;
        }
        while chain.len() < pages_needed {
            chain.push(pool.allocate()?);
            tails.push(INVALID_PAGE);
        }
        for (i, chunk) in stream.chunks(DATA_CAPACITY).enumerate() {
            let next = if i + 1 < pages_needed {
                chain[i + 1]
            } else {
                // Preserve the link to any longer tail from an earlier,
                // larger batch so those pages stay reusable.
                tails[i]
            };
            let mut buf = vec![0u8; PAGE_SIZE];
            buf[0..4].copy_from_slice(&next.to_le_bytes());
            buf[4..8].copy_from_slice(&JDATA_MAGIC.to_le_bytes());
            buf[8..8 + chunk.len()].copy_from_slice(chunk);
            pool.overwrite_page(chain[i], &buf)?;
        }
        pool.flush_pages(&chain)?;
        // 2. Commit point: one flushed header write.
        self.write_header(pool, STATE_COMMITTED, writes.len() as u32, chain[0])?;
        pool.flush_pages(&[self.header])?;
        // 3. Apply to home pages.
        for (page, image) in writes {
            pool.overwrite_page(*page, image)?;
        }
        let homes: Vec<PageId> = writes.iter().map(|(p, _)| *p).collect();
        pool.flush_pages(&homes)?;
        // 4. Clear the commit mark (keeping the chain for reuse).
        self.write_header(pool, STATE_EMPTY, 0, chain[0])?;
        pool.flush_pages(&[self.header])?;
        Ok(())
    }

    fn write_header(
        &self,
        pool: &BufferPool,
        state: u32,
        num_records: u32,
        first_data: PageId,
    ) -> Result<()> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..8].copy_from_slice(JOURNAL_MAGIC);
        buf[8..12].copy_from_slice(&state.to_le_bytes());
        buf[12..16].copy_from_slice(&num_records.to_le_bytes());
        buf[16..20].copy_from_slice(&first_data.to_le_bytes());
        pool.overwrite_page(self.header, &buf)
    }

    /// Reads the header, returning `Ok(None)` when it is torn, foreign or
    /// checksum-invalid (recovery treats that as "before the commit
    /// point") and propagating genuine I/O failures.
    fn read_header(&self, pool: &BufferPool) -> Result<Option<(u32, u32, PageId)>> {
        match pool.with_page(self.header, |b| {
            if &b[0..8] != JOURNAL_MAGIC {
                return None;
            }
            let state = u32::from_le_bytes(b[8..12].try_into().unwrap());
            let num_records = u32::from_le_bytes(b[12..16].try_into().unwrap());
            let first_data = PageId::from_le_bytes(b[16..20].try_into().unwrap());
            Some((state, num_records, first_data))
        }) {
            Ok(parsed) => Ok(parsed),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::PageOutOfBounds(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reads `len` stream bytes by walking the data chain from `first`.
    fn read_stream(&self, pool: &BufferPool, first: PageId, len: usize) -> Result<Vec<u8>> {
        let mut stream = Vec::with_capacity(len);
        let mut cursor = first;
        while stream.len() < len {
            if cursor == INVALID_PAGE {
                return Err(StoreError::corrupt("journal data chain ends early"));
            }
            let take = (len - stream.len()).min(DATA_CAPACITY);
            cursor = pool
                .with_page(cursor, |b| {
                    if u32::from_le_bytes(b[4..8].try_into().unwrap()) != JDATA_MAGIC {
                        return Err(StoreError::corrupt("journal data chain broken"));
                    }
                    stream.extend_from_slice(&b[8..8 + take]);
                    Ok(PageId::from_le_bytes(b[0..4].try_into().unwrap()))
                })
                .map_err(|e| match e {
                    StoreError::Corrupt { page, .. } => StoreError::Corrupt {
                        page,
                        what: "journal data chain unreadable",
                    },
                    other => other,
                })??;
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPool, MemDisk};

    #[test]
    fn record_roundtrip() {
        let image = vec![7u8; PAGE_SIZE];
        let rec = encode_record(42, &image);
        assert_eq!(rec.len(), RECORD_SIZE);
        let (page, back) = decode_record(&rec).unwrap();
        assert_eq!(page, 42);
        assert_eq!(back, &image[..]);
    }

    #[test]
    fn fresh_journal_opens_clean() {
        let pool = BufferPool::new(MemDisk::new(), 8);
        let journal = Journal::create(&pool).unwrap();
        let (_, recovery) = Journal::open(&pool, journal.header_page()).unwrap();
        assert_eq!(recovery, Recovery::Clean);
    }

    #[test]
    fn commit_applies_and_clears() {
        let pool = BufferPool::new(MemDisk::new(), 8);
        let journal = Journal::create(&pool).unwrap();
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let writes = vec![
            (a, vec![1u8; PAGE_SIZE].into_boxed_slice()),
            (b, vec![2u8; PAGE_SIZE].into_boxed_slice()),
        ];
        journal.commit(&pool, &writes).unwrap();
        assert_eq!(pool.with_page(a, |p| p[0]).unwrap(), 1);
        assert_eq!(pool.with_page(b, |p| p[0]).unwrap(), 2);
        let (_, recovery) = Journal::open(&pool, journal.header_page()).unwrap();
        assert_eq!(recovery, Recovery::Clean);
    }

    #[test]
    fn chain_pages_are_reused_across_commits() {
        let pool = BufferPool::new(MemDisk::new(), 8);
        let journal = Journal::create(&pool).unwrap();
        let a = pool.allocate().unwrap();
        journal
            .commit(&pool, &[(a, vec![1u8; PAGE_SIZE].into_boxed_slice())])
            .unwrap();
        let pages_after_first = pool.num_pages();
        for round in 2..6u8 {
            journal
                .commit(&pool, &[(a, vec![round; PAGE_SIZE].into_boxed_slice())])
                .unwrap();
        }
        assert_eq!(
            pool.num_pages(),
            pages_after_first,
            "same-size commits must not grow the disk"
        );
        assert_eq!(pool.with_page(a, |p| p[0]).unwrap(), 5);
    }
}
