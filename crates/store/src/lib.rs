//! Page-based storage substrate for the ANN workspace.
//!
//! The paper runs all experiments on indices built over the SHORE storage
//! manager with **8 KB pages** and a **512 KB (64-page) LRU buffer pool**
//! (§4.1). This crate is the equivalent substrate, providing exactly the
//! pieces those experiments depend on:
//!
//! * [`PAGE_SIZE`]-byte pages addressed by [`PageId`] ([`page`]);
//! * a [`DiskBackend`] abstraction with an in-memory ([`MemDisk`]) and a
//!   real-file ([`FileDisk`]) implementation ([`disk`]);
//! * an exact-LRU [`BufferPool`] with pluggable capacity ([`pool`]) — the
//!   capacity knob is what the paper's Figure 3(b) sweeps from 512 KiB to
//!   8 MiB;
//! * I/O accounting ([`IoStats`]): logical reads, physical reads and writes
//!   are counted at the pool boundary, so every figure can report an "I/O"
//!   component that is measured rather than estimated;
//! * a slotted-page layout ([`slotted`]) and a [`HeapFile`] of fixed-size
//!   records ([`heap`]), used by the GORDER baseline's sorted block file
//!   and by dataset scans.
//!
//! # Example
//!
//! ```
//! use ann_store::{BufferPool, MemDisk};
//!
//! let pool = BufferPool::new(MemDisk::new(), 64); // 512 KiB, as in the paper
//! let pid = pool.allocate().unwrap();
//! pool.with_page_mut(pid, |bytes| bytes[0..4].copy_from_slice(b"ANN!")).unwrap();
//! let tag = pool.with_page(pid, |bytes| bytes[0..4].to_vec()).unwrap();
//! assert_eq!(&tag, b"ANN!");
//! // Both accesses were served from the pool: no physical reads.
//! assert_eq!(pool.stats().logical_reads, 2);
//! assert_eq!(pool.stats().physical_reads, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod disk;
pub mod faulty;
pub mod heap;
mod lru;
pub mod page;
pub mod pool;
pub mod slotted;
mod stats;

pub use disk::{DiskBackend, FileDisk, MemDisk};
pub use faulty::FaultyDisk;
pub use heap::HeapFile;
pub use page::{PageId, INVALID_PAGE, PAGE_SIZE};
pub use pool::BufferPool;
pub use stats::{IoSnapshot, IoStats};

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// The requested page id has never been allocated.
    PageOutOfBounds(PageId),
    /// An operating-system I/O error from the file backend.
    Io(std::io::Error),
    /// A record or node does not fit in one page.
    RecordTooLarge {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// Stored bytes failed validation while being decoded.
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::PageOutOfBounds(id) => write!(f, "page {id} out of bounds"),
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::RecordTooLarge {
                requested,
                available,
            } => write!(
                f,
                "record of {requested} bytes does not fit in {available} available bytes"
            ),
            StoreError::Corrupt(what) => write!(f, "corrupt page data: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, StoreError>;
