//! Page-based storage substrate for the ANN workspace.
//!
//! The paper runs all experiments on indices built over the SHORE storage
//! manager with **8 KB pages** and a **512 KB (64-page) LRU buffer pool**
//! (§4.1). This crate is the equivalent substrate, providing exactly the
//! pieces those experiments depend on:
//!
//! * [`PAGE_SIZE`]-byte pages addressed by [`PageId`] ([`page`]);
//! * a [`DiskBackend`] abstraction with an in-memory ([`MemDisk`]) and a
//!   real-file ([`FileDisk`]) implementation ([`disk`]);
//! * an exact-LRU [`BufferPool`] with pluggable capacity ([`pool`]) — the
//!   capacity knob is what the paper's Figure 3(b) sweeps from 512 KiB to
//!   8 MiB;
//! * I/O accounting ([`IoStats`]): logical reads, physical reads and writes
//!   are counted at the pool boundary, so every figure can report an "I/O"
//!   component that is measured rather than estimated;
//! * a slotted-page layout ([`slotted`]) and a [`HeapFile`] of fixed-size
//!   records ([`heap`]), used by the GORDER baseline's sorted block file
//!   and by dataset scans.
//!
//! SHORE also gave the paper's indices durability and corruption detection
//! for free; this crate reproduces that too:
//!
//! * every physical frame carries a CRC32 trailer ([`checksum`]), sealed on
//!   write and verified on read, so torn writes and bit rot surface as
//!   [`StoreError::Corrupt`] with the offending page id;
//! * a redo journal ([`journal`]) plus a transaction side-buffer ([`txn`])
//!   give multi-page structural updates all-or-nothing semantics with
//!   recovery on open;
//! * a bounded [`RetryPolicy`] at the pool boundary retries transient
//!   faults, with retry and corruption counters in [`IoStats`];
//! * [`FaultyDisk`] injects deterministic torn writes, bit flips, transient
//!   errors and crashes for the fault-sweep test suites.
//!
//! # Example
//!
//! ```
//! use ann_store::{BufferPool, MemDisk};
//!
//! let pool = BufferPool::new(MemDisk::new(), 64); // 512 KiB, as in the paper
//! let pid = pool.allocate().unwrap();
//! pool.with_page_mut(pid, |bytes| bytes[0..4].copy_from_slice(b"ANN!")).unwrap();
//! let tag = pool.with_page(pid, |bytes| bytes[0..4].to_vec()).unwrap();
//! assert_eq!(&tag, b"ANN!");
//! // Both accesses were served from the pool: no physical reads.
//! assert_eq!(pool.stats().logical_reads, 2);
//! assert_eq!(pool.stats().physical_reads, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checksum;
pub mod disk;
pub mod faulty;
pub mod heap;
pub mod journal;
mod lru;
pub mod page;
pub mod pool;
pub mod slotted;
mod stats;
pub mod txn;
pub mod versioned;

pub use disk::{DiskBackend, FileDisk, MemDisk};
pub use faulty::{splitmix64, FaultyDisk, InjectedFault};
pub use heap::HeapFile;
pub use journal::{Journal, Recovery};
pub use page::{PageId, FRAME_SIZE, INVALID_PAGE, PAGE_SIZE, PAGE_TRAILER};
pub use pool::{BufferPool, PageStore, PrefetchConfig, RetryPolicy, QUARANTINED};
pub use stats::{IoSnapshot, IoStats};
pub use txn::Txn;
pub use versioned::{Snapshot, VersionInfo, VersionedStore, DEFAULT_KEEP};

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// The requested page id has never been allocated.
    PageOutOfBounds(PageId),
    /// An operating-system I/O error from the file backend.
    Io(std::io::Error),
    /// A record or node does not fit in one page.
    RecordTooLarge {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// Stored bytes failed validation while being decoded or checked.
    Corrupt {
        /// The offending page, when the failure is attributable to one
        /// (checksum mismatches always are; higher-level decode errors
        /// may not be).
        page: Option<PageId>,
        /// What failed.
        what: &'static str,
    },
    /// A fault injected by [`FaultyDisk`]; `transient` faults succeed when
    /// the operation is retried, permanent ones never do.
    Injected {
        /// Whether a retry can succeed.
        transient: bool,
    },
    /// A snapshot pin requested a version that has aged out of the
    /// bounded history window (or never existed).
    VersionNotRetained(u32),
    /// A versioned commit raced another writer: the transaction read
    /// through `base` but `latest` has moved on since.
    WriteConflict {
        /// Version the losing transaction was based on.
        base: u32,
        /// Latest committed version at commit time.
        latest: u32,
    },
}

impl StoreError {
    /// A [`StoreError::Corrupt`] not tied to a specific page.
    pub fn corrupt(what: &'static str) -> Self {
        StoreError::Corrupt { page: None, what }
    }

    /// A [`StoreError::Corrupt`] attributed to `page`.
    pub fn corrupt_page(page: PageId, what: &'static str) -> Self {
        StoreError::Corrupt {
            page: Some(page),
            what,
        }
    }

    /// Whether retrying the failed operation may succeed: injected
    /// transient faults and interrupted/timed-out OS errors.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Injected { transient } => *transient,
            StoreError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::PageOutOfBounds(id) => write!(f, "page {id} out of bounds"),
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::RecordTooLarge {
                requested,
                available,
            } => write!(
                f,
                "record of {requested} bytes does not fit in {available} available bytes"
            ),
            StoreError::Corrupt {
                page: Some(id),
                what,
            } => write!(f, "corrupt page {id}: {what}"),
            StoreError::Corrupt { page: None, what } => write!(f, "corrupt page data: {what}"),
            StoreError::Injected { transient: true } => write!(f, "injected transient fault"),
            StoreError::Injected { transient: false } => write!(f, "injected permanent fault"),
            StoreError::VersionNotRetained(v) => {
                write!(f, "snapshot version {v} is no longer retained")
            }
            StoreError::WriteConflict { base, latest } => write!(
                f,
                "write conflict: transaction based on version {base} but latest is {latest}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, StoreError>;
