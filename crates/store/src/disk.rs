//! Disk backends: where page frames physically live.
//!
//! The buffer pool is generic over a [`DiskBackend`]. Two implementations
//! are provided:
//!
//! * [`MemDisk`] — frames in a `Vec`; deterministic and fast, used by tests
//!   and by benchmarks that charge I/O analytically from the pool's
//!   physical-read counters (the paper's methodology: I/O cost is the
//!   number of page faults under a fixed-size LRU pool).
//! * [`FileDisk`] — frames in a real file accessed with positioned reads
//!   and writes, for end-to-end runs that want the operating system in the
//!   loop.
//!
//! Backends transfer whole [`FRAME_SIZE`] frames: the [`PAGE_SIZE`]
//! payload the pool's clients see plus the checksum trailer
//! ([`crate::checksum`]) the pool seals and verifies. Backends treat the
//! frame as opaque bytes — corruption detection lives entirely at the pool
//! boundary, which is what lets [`crate::FaultyDisk`] damage trailers too.

use crate::{PageId, Result, StoreError, FRAME_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// A linear array of [`FRAME_SIZE`]-byte page frames.
///
/// Backends are internally synchronized: all methods take `&self` so a
/// backend can sit behind the buffer pool's own lock without double
/// locking gymnastics.
pub trait DiskBackend: Send + Sync + 'static {
    /// Reads frame `id` into `buf` (which is exactly [`FRAME_SIZE`] long).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` (exactly [`FRAME_SIZE`] long) to frame `id`.
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Appends a zeroed frame and returns its id.
    fn allocate(&self) -> Result<PageId>;

    /// Number of allocated pages.
    fn num_pages(&self) -> PageId;

    /// Reads `ids.len()` frames into `out` (exactly `ids.len() *`
    /// [`FRAME_SIZE`] bytes, frame `i` at offset `i * FRAME_SIZE`).
    ///
    /// The default implementation reads page by page; backends with real
    /// positioned I/O override it to coalesce contiguous ascending runs
    /// into one transfer each — the prefetcher sorts its batch ascending
    /// for exactly this reason. The result is all-or-nothing: on error,
    /// the contents of `out` are unspecified.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != ids.len() * FRAME_SIZE`.
    fn read_batch(&self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        assert_eq!(out.len(), ids.len() * FRAME_SIZE, "batch buffer size");
        for (i, &id) in ids.iter().enumerate() {
            self.read_page(id, &mut out[i * FRAME_SIZE..(i + 1) * FRAME_SIZE])?;
        }
        Ok(())
    }
}

/// Shared handles delegate, so tests can keep a handle to a backend (e.g.
/// the [`MemDisk`] under a [`crate::FaultyDisk`]) while a pool owns a
/// clone — the way crash-recovery tests "reopen" the surviving media.
impl<B: DiskBackend> DiskBackend for Arc<B> {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        (**self).read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        (**self).write_page(id, buf)
    }

    fn allocate(&self) -> Result<PageId> {
        (**self).allocate()
    }

    fn num_pages(&self) -> PageId {
        (**self).num_pages()
    }

    fn read_batch(&self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        (**self).read_batch(ids, out)
    }
}

/// An in-memory disk: a growable vector of frames.
#[derive(Default)]
pub struct MemDisk {
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemDisk {
    /// Creates an empty in-memory disk.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiskBackend for MemDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or(StoreError::PageOutOfBounds(id))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.lock();
        let page = pages
            .get_mut(id as usize)
            .ok_or(StoreError::PageOutOfBounds(id))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push(vec![0u8; FRAME_SIZE].into_boxed_slice());
        Ok(id)
    }

    fn num_pages(&self) -> PageId {
        self.pages.lock().len() as PageId
    }

    fn read_batch(&self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        assert_eq!(out.len(), ids.len() * FRAME_SIZE, "batch buffer size");
        // One lock acquisition for the whole batch.
        let pages = self.pages.lock();
        for (i, &id) in ids.iter().enumerate() {
            let page = pages
                .get(id as usize)
                .ok_or(StoreError::PageOutOfBounds(id))?;
            out[i * FRAME_SIZE..(i + 1) * FRAME_SIZE].copy_from_slice(page);
        }
        Ok(())
    }
}

/// A file-backed disk: frame `i` lives at byte offset `i * FRAME_SIZE`.
pub struct FileDisk {
    file: Mutex<File>,
    num_pages: Mutex<PageId>,
}

impl FileDisk {
    /// Creates (or truncates) the file at `path` as an empty disk.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDisk {
            file: Mutex::new(file),
            num_pages: Mutex::new(0),
        })
    }

    /// Opens an existing disk file; its length must be a whole number of
    /// frames.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % FRAME_SIZE as u64 != 0 {
            return Err(StoreError::corrupt("file length not frame aligned"));
        }
        Ok(FileDisk {
            file: Mutex::new(file),
            num_pages: Mutex::new((len / FRAME_SIZE as u64) as PageId),
        })
    }
}

impl DiskBackend for FileDisk {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if id >= self.num_pages() {
            return Err(StoreError::PageOutOfBounds(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * FRAME_SIZE as u64))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        if id >= self.num_pages() {
            return Err(StoreError::PageOutOfBounds(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * FRAME_SIZE as u64))?;
        file.write_all(buf)?;
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut n = self.num_pages.lock();
        let id = *n;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * FRAME_SIZE as u64))?;
        file.write_all(&[0u8; FRAME_SIZE])?;
        *n += 1;
        Ok(id)
    }

    fn num_pages(&self) -> PageId {
        *self.num_pages.lock()
    }

    fn read_batch(&self, ids: &[PageId], out: &mut [u8]) -> Result<()> {
        assert_eq!(out.len(), ids.len() * FRAME_SIZE, "batch buffer size");
        let num_pages = self.num_pages();
        if let Some(&bad) = ids.iter().find(|&&id| id >= num_pages) {
            return Err(StoreError::PageOutOfBounds(bad));
        }
        // One seek + one read per contiguous ascending run of page ids —
        // the payoff of packing tree levels sequentially: a readahead
        // batch over a leaf run becomes a single large transfer.
        let mut file = self.file.lock();
        let mut i = 0;
        while i < ids.len() {
            let mut j = i + 1;
            while j < ids.len() && ids[j] == ids[j - 1] + 1 {
                j += 1;
            }
            file.seek(SeekFrom::Start(ids[i] as u64 * FRAME_SIZE as u64))?;
            file.read_exact(&mut out[i * FRAME_SIZE..j * FRAME_SIZE])?;
            i = j;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    fn roundtrip(disk: &dyn DiskBackend) {
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(disk.num_pages(), 2);

        let mut page = vec![0u8; FRAME_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        page[FRAME_SIZE - 1] = 0xEF;
        disk.write_page(b, &page).unwrap();

        let mut readback = vec![0u8; FRAME_SIZE];
        disk.read_page(b, &mut readback).unwrap();
        assert_eq!(readback, page);

        // Page `a` is still zeroed.
        disk.read_page(a, &mut readback).unwrap();
        assert!(readback.iter().all(|&x| x == 0));
    }

    #[test]
    fn mem_disk_roundtrip() {
        roundtrip(&MemDisk::new());
    }

    #[test]
    fn arc_backend_delegates() {
        let disk = Arc::new(MemDisk::new());
        let other = Arc::clone(&disk);
        roundtrip(&other);
        assert_eq!(disk.num_pages(), 2);
    }

    #[test]
    fn file_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ann-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-roundtrip.pages");
        roundtrip(&FileDisk::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_disk_reopen_preserves_pages() {
        let dir = std::env::temp_dir().join(format!("ann-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-reopen.pages");
        {
            let disk = FileDisk::create(&path).unwrap();
            let id = disk.allocate().unwrap();
            let mut page = vec![0u8; FRAME_SIZE];
            page[42] = 7;
            disk.write_page(id, &page).unwrap();
        }
        let disk = FileDisk::open(&path).unwrap();
        assert_eq!(disk.num_pages(), 1);
        let mut page = vec![0u8; FRAME_SIZE];
        disk.read_page(0, &mut page).unwrap();
        assert_eq!(page[42], 7);
        std::fs::remove_file(&path).ok();
    }

    /// `read_batch` over an arbitrary id permutation (duplicates, runs,
    /// descents) must agree with page-by-page reads.
    fn batch_matches_pages(disk: &dyn DiskBackend) {
        for i in 0..6u8 {
            let id = disk.allocate().unwrap();
            let mut page = vec![i + 1; FRAME_SIZE];
            page[0] = 0xF0 | i;
            disk.write_page(id, &page).unwrap();
        }
        // Two contiguous runs (1,2,3 and 5), a duplicate, and a descent.
        let ids: [PageId; 6] = [1, 2, 3, 5, 0, 0];
        let mut batch = vec![0u8; ids.len() * FRAME_SIZE];
        disk.read_batch(&ids, &mut batch).unwrap();
        let mut single = vec![0u8; FRAME_SIZE];
        for (i, &id) in ids.iter().enumerate() {
            disk.read_page(id, &mut single).unwrap();
            assert_eq!(
                &batch[i * FRAME_SIZE..(i + 1) * FRAME_SIZE],
                &single[..],
                "batch slot {i} (page {id}) diverged"
            );
        }
        // Out-of-bounds ids fail the whole batch.
        let mut oob = vec![0u8; 2 * FRAME_SIZE];
        assert!(matches!(
            disk.read_batch(&[2, 99], &mut oob),
            Err(StoreError::PageOutOfBounds(99))
        ));
    }

    #[test]
    fn mem_disk_batch_matches_pages() {
        batch_matches_pages(&MemDisk::new());
    }

    #[test]
    fn file_disk_batch_matches_pages() {
        let dir = std::env::temp_dir().join(format!("ann-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk-batch.pages");
        batch_matches_pages(&FileDisk::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arc_backend_forwards_read_batch() {
        let disk = Arc::new(MemDisk::new());
        batch_matches_pages(&Arc::clone(&disk));
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let disk = MemDisk::new();
        let mut buf = vec![0u8; FRAME_SIZE];
        assert!(matches!(
            disk.read_page(3, &mut buf),
            Err(StoreError::PageOutOfBounds(3))
        ));
        assert!(matches!(
            disk.write_page(0, &buf),
            Err(StoreError::PageOutOfBounds(0))
        ));
    }
}
