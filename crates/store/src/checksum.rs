//! Page checksums: a hand-rolled CRC32 (IEEE 802.3 polynomial) and the
//! frame seal/verify helpers built on it.
//!
//! Every physical frame written by the buffer pool carries an 8-byte
//! trailer after its [`PAGE_SIZE`](crate::PAGE_SIZE) payload: a CRC32 of
//! the payload followed by a seal magic. The pool seals frames on every
//! physical write and verifies them on every physical read, so torn
//! writes and bit rot surface as [`StoreError::Corrupt`](crate::StoreError)
//! instead of silently feeding garbage to the index codecs.
//!
//! The CRC is table-driven and implemented here (no external crate: the
//! workspace must build with an offline registry). The reflected IEEE
//! polynomial is the same one used by zip/png/ethernet, with the standard
//! check value `crc32(b"123456789") == 0xCBF4_3926`.

use crate::{FRAME_SIZE, PAGE_SIZE};

/// 256-entry lookup table for the reflected IEEE polynomial `0xEDB88320`.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Initial state for incremental CRC computation.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Folds `bytes` into an in-progress CRC state (start from [`CRC_INIT`]).
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Finalizes an incremental CRC state into the checksum value.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// CRC32 (IEEE) of `bytes` in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, bytes))
}

/// Magic marking a frame trailer as written by this layer.
///
/// Shares the trailer with the CRC so a frame whose tail was never
/// persisted (torn write over a fresh page) is distinguishable from a
/// frame with a damaged payload.
pub const SEAL_MAGIC: u32 = 0x5EA1_EDA5;

/// Writes the CRC + magic trailer over `frame[PAGE_SIZE..]`.
///
/// # Panics
///
/// Panics if `frame` is not exactly [`FRAME_SIZE`] bytes.
pub fn seal_frame(frame: &mut [u8]) {
    assert_eq!(frame.len(), FRAME_SIZE, "seal_frame needs a full frame");
    let crc = crc32(&frame[..PAGE_SIZE]);
    frame[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc.to_le_bytes());
    frame[PAGE_SIZE + 4..].copy_from_slice(&SEAL_MAGIC.to_le_bytes());
}

/// Checks a frame read back from a backend.
///
/// Returns `Ok(())` for a correctly sealed frame *or* an entirely zeroed
/// one (a freshly allocated page that was never physically written — both
/// backends allocate zero-filled), and `Err(reason)` otherwise.
///
/// # Panics
///
/// Panics if `frame` is not exactly [`FRAME_SIZE`] bytes.
pub fn verify_frame(frame: &[u8]) -> std::result::Result<(), &'static str> {
    assert_eq!(frame.len(), FRAME_SIZE, "verify_frame needs a full frame");
    let magic = u32::from_le_bytes(frame[PAGE_SIZE + 4..].try_into().unwrap());
    if magic != SEAL_MAGIC {
        if frame.iter().all(|&b| b == 0) {
            return Ok(()); // fresh page, never sealed
        }
        return Err("page trailer missing or torn");
    }
    let stored = u32::from_le_bytes(frame[PAGE_SIZE..PAGE_SIZE + 4].try_into().unwrap());
    if stored != crc32(&frame[..PAGE_SIZE]) {
        return Err("page checksum mismatch");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The standard CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"all nearest neighbor queries";
        let mut state = CRC_INIT;
        for chunk in data.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(crc32_finish(state), crc32(data));
    }

    #[test]
    fn sealed_frame_verifies() {
        let mut frame = vec![0u8; FRAME_SIZE];
        frame[123] = 0xAB;
        seal_frame(&mut frame);
        assert_eq!(verify_frame(&frame), Ok(()));
    }

    #[test]
    fn zero_frame_is_a_valid_fresh_page() {
        let frame = vec![0u8; FRAME_SIZE];
        assert_eq!(verify_frame(&frame), Ok(()));
    }

    #[test]
    fn payload_damage_is_detected() {
        let mut frame = vec![0u8; FRAME_SIZE];
        frame[0] = 1;
        seal_frame(&mut frame);
        frame[4000] ^= 0x10;
        assert!(verify_frame(&frame).is_err());
    }

    #[test]
    fn torn_tail_is_detected() {
        let mut frame = vec![0u8; FRAME_SIZE];
        frame[0] = 1;
        seal_frame(&mut frame);
        // Simulate a torn write over a fresh page: only the first 100
        // bytes of the sealed frame persisted, the rest stayed zero.
        let mut torn = vec![0u8; FRAME_SIZE];
        torn[..100].copy_from_slice(&frame[..100]);
        assert!(verify_frame(&torn).is_err());
    }
}
