//! Property-based tests of the buffer pool: under any interleaving of
//! operations it must behave exactly like a transparent cache over the
//! disk, and its LRU accounting must match a reference model.

use ann_store::{BufferPool, MemDisk, PAGE_SIZE};
use proptest::prelude::*;

/// Operations the model driver performs.
#[derive(Clone, Debug)]
enum Op {
    Allocate,
    /// Write `value` into page `page_choice % allocated`.
    Write {
        page_choice: u8,
        value: u8,
    },
    Read {
        page_choice: u8,
    },
    FlushAll,
    Clear,
    SetCapacity(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Allocate),
        4 => (any::<u8>(), any::<u8>()).prop_map(|(page_choice, value)| Op::Write {
            page_choice,
            value
        }),
        4 => any::<u8>().prop_map(|page_choice| Op::Read { page_choice }),
        1 => Just(Op::FlushAll),
        1 => Just(Op::Clear),
        1 => (1u8..32).prop_map(Op::SetCapacity),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pool is a transparent cache: reads always see the latest write
    /// to each page, across evictions, flushes, clears and capacity
    /// changes. A plain `Vec<u8>` (one byte per page) is the model.
    #[test]
    fn pool_is_a_transparent_cache(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let pool = BufferPool::new(MemDisk::new(), 4);
        let mut model: Vec<u8> = vec![];
        for op in ops {
            match op {
                Op::Allocate => {
                    let id = pool.allocate().unwrap();
                    prop_assert_eq!(id as usize, model.len());
                    model.push(0);
                }
                Op::Write { page_choice, value } => {
                    if model.is_empty() { continue; }
                    let page = page_choice as usize % model.len();
                    pool.with_page_mut(page as u32, |bytes| bytes[7] = value).unwrap();
                    model[page] = value;
                }
                Op::Read { page_choice } => {
                    if model.is_empty() { continue; }
                    let page = page_choice as usize % model.len();
                    let got = pool.with_page(page as u32, |bytes| bytes[7]).unwrap();
                    prop_assert_eq!(got, model[page]);
                }
                Op::FlushAll => pool.flush_all().unwrap(),
                Op::Clear => pool.clear().unwrap(),
                Op::SetCapacity(c) => pool.set_capacity(c as usize).unwrap(),
            }
        }
        // Final sweep: every page readable with its last written value.
        for (page, &want) in model.iter().enumerate() {
            let got = pool.with_page(page as u32, |bytes| bytes[7]).unwrap();
            prop_assert_eq!(got, want);
        }
    }

    /// Physical reads only happen on misses: with a pool at least as large
    /// as the page count, each page faults at most once however often it
    /// is read.
    #[test]
    fn large_pool_faults_each_page_once(
        accesses in proptest::collection::vec(0u8..16, 1..200)
    ) {
        let pool = BufferPool::new(MemDisk::new(), 16);
        for _ in 0..16 {
            pool.allocate().unwrap();
        }
        pool.clear().unwrap();
        pool.reset_stats();
        let mut touched = std::collections::HashSet::new();
        for a in accesses {
            pool.with_page(a as u32, |_| ()).unwrap();
            touched.insert(a);
        }
        prop_assert_eq!(pool.stats().physical_reads, touched.len() as u64);
    }

    /// Page contents are preserved byte-for-byte through eviction cycles.
    #[test]
    fn full_page_roundtrip_through_eviction(payload in proptest::collection::vec(any::<u8>(), PAGE_SIZE)) {
        let pool = BufferPool::new(MemDisk::new(), 1);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        pool.with_page_mut(a, |bytes| bytes.copy_from_slice(&payload)).unwrap();
        // Touching b evicts a (capacity 1).
        pool.with_page_mut(b, |bytes| bytes[0] = 1).unwrap();
        let back = pool.with_page(a, |bytes| bytes.to_vec()).unwrap();
        prop_assert_eq!(back, payload);
    }
}
