//! Property-style durability tests (deterministic sweeps, no external
//! generator crates): the checksum codec, the journal record codec, and
//! the atomic-commit protocol under exhaustive crash points.

use ann_store::checksum::{crc32, crc32_finish, crc32_update, seal_frame, verify_frame, CRC_INIT};
use ann_store::journal::{decode_record, encode_record, RECORD_SIZE};
use ann_store::{
    splitmix64, BufferPool, DiskBackend, FaultyDisk, InjectedFault, Journal, MemDisk, PageId,
    PageStore, Recovery, StoreError, Txn, FRAME_SIZE, PAGE_SIZE,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// CRC32 and the frame seal
// ---------------------------------------------------------------------------

#[test]
fn crc32_matches_the_reference_check_vector() {
    // The canonical IEEE 802.3 check value.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
}

#[test]
fn incremental_crc_equals_one_shot_for_every_split_point() {
    let data: Vec<u8> = (0..257u32).map(|i| splitmix64(i as u64) as u8).collect();
    let expect = crc32(&data);
    for split in 0..=data.len() {
        let mut st = CRC_INIT;
        st = crc32_update(st, &data[..split]);
        st = crc32_update(st, &data[split..]);
        assert_eq!(crc32_finish(st), expect, "split at {split}");
    }
}

#[test]
fn sealed_frames_verify_and_all_zero_frames_pass_as_fresh() {
    let mut frame = vec![0u8; FRAME_SIZE];
    assert!(verify_frame(&frame).is_ok(), "fresh page is valid");
    for (i, b) in frame.iter_mut().enumerate().take(PAGE_SIZE) {
        *b = splitmix64(i as u64) as u8;
    }
    seal_frame(&mut frame);
    assert!(verify_frame(&frame).is_ok());
}

#[test]
fn every_sampled_single_bit_flip_is_detected() {
    let mut frame = vec![0u8; FRAME_SIZE];
    for (i, b) in frame.iter_mut().enumerate().take(PAGE_SIZE) {
        *b = splitmix64(i as u64 ^ 0xF00) as u8;
    }
    seal_frame(&mut frame);
    // Stride-sample the bit positions (a prime stride covers every byte
    // class); CRC32 detects all single-bit errors, so each flip must fail.
    let total_bits = FRAME_SIZE * 8;
    let mut bit = 0usize;
    let mut checked = 0u32;
    while bit < total_bits {
        let mut copy = frame.clone();
        copy[bit / 8] ^= 1 << (bit % 8);
        assert!(
            verify_frame(&copy).is_err(),
            "flip of bit {bit} went undetected"
        );
        checked += 1;
        bit += 509;
    }
    assert!(checked > 100);
}

// ---------------------------------------------------------------------------
// Journal record codec
// ---------------------------------------------------------------------------

#[test]
fn journal_records_round_trip() {
    for seed in 0..16u64 {
        let page = (splitmix64(seed) % 10_000) as PageId;
        let image: Vec<u8> = (0..PAGE_SIZE)
            .map(|i| splitmix64(seed ^ i as u64) as u8)
            .collect();
        let rec = encode_record(page, &image);
        assert_eq!(rec.len(), RECORD_SIZE);
        let (got_page, got_image) = decode_record(&rec).unwrap();
        assert_eq!(got_page, page);
        assert_eq!(got_image, &image[..]);
    }
}

#[test]
fn truncated_and_bit_flipped_records_are_rejected() {
    let image = vec![0x5Au8; PAGE_SIZE];
    let rec = encode_record(42, &image);
    assert!(decode_record(&rec[..RECORD_SIZE - 1]).is_err());
    // Sampled single-bit flips anywhere in the record (page id, crc, or
    // image) must fail the record checksum.
    let mut bit = 0usize;
    while bit < RECORD_SIZE * 8 {
        let mut copy = rec.clone();
        copy[bit / 8] ^= 1 << (bit % 8);
        assert!(
            matches!(decode_record(&copy), Err(StoreError::Corrupt { .. })),
            "flip of bit {bit} went undetected"
        );
        bit += 487;
    }
}

// ---------------------------------------------------------------------------
// Atomic commit under exhaustive crash points
// ---------------------------------------------------------------------------

const PAGES: usize = 4;

fn old_image(i: usize) -> u8 {
    0x11 * (i as u8 + 1)
}

fn new_image(i: usize) -> u8 {
    0x77 ^ (i as u8)
}

/// Sets up `PAGES` home pages with old images plus a journal, all durable.
/// Returns (pool, journal, page ids).
fn setup(disk: impl DiskBackend) -> (Arc<BufferPool>, Journal, Vec<PageId>) {
    let pool = Arc::new(BufferPool::new(disk, 8));
    let journal = Journal::create(&pool).unwrap();
    let mut ids = Vec::new();
    for i in 0..PAGES {
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |bytes| bytes.fill(old_image(i)))
            .unwrap();
        ids.push(id);
    }
    pool.flush_all().unwrap();
    (pool, journal, ids)
}

fn commit_new_images(
    pool: &Arc<BufferPool>,
    journal: Journal,
    ids: &[PageId],
) -> ann_store::Result<()> {
    let txn = Txn::begin(pool, journal);
    for (i, &id) in ids.iter().enumerate() {
        txn.with_page_mut(id, |bytes| bytes.fill(new_image(i)))?;
    }
    txn.commit()
}

/// Ops a healthy setup + commit consumes, to bound the crash sweep.
fn op_counts() -> (u64, u64) {
    let fd = Arc::new(FaultyDisk::unlimited(MemDisk::new()));
    let (pool, journal, ids) = setup(Arc::clone(&fd));
    let before = fd.op_count();
    commit_new_images(&pool, journal, &ids).unwrap();
    (before, fd.op_count())
}

#[test]
fn a_crash_at_every_commit_step_leaves_all_old_or_all_new() {
    let (start, end) = op_counts();
    assert!(end > start + 4, "the commit must touch the disk");

    let (mut old_runs, mut new_runs) = (0u32, 0u32);
    for op in start..end {
        let mem = Arc::new(MemDisk::new());
        let fd = Arc::new(FaultyDisk::unlimited(Arc::clone(&mem)));
        // Alternate between a clean crash and a torn write at this step.
        let fault = if op % 2 == 0 {
            InjectedFault::Crash
        } else {
            InjectedFault::TornWrite {
                persist: (splitmix64(op) as usize) % FRAME_SIZE,
            }
        };
        let (pool, journal, ids) = setup(Arc::clone(&fd));
        fd.inject_at(op, fault);
        let result = commit_new_images(&pool, journal, &ids);
        drop(pool);

        // Restart over the surviving media and recover.
        let pool = Arc::new(BufferPool::new(Arc::clone(&mem), 8));
        let (_, recovery) = Journal::open(&pool, journal.header_page()).unwrap();
        let firsts: Vec<u8> = ids
            .iter()
            .map(|&id| pool.with_page(id, |b| b[0]).unwrap())
            .collect();
        let all_old: Vec<u8> = (0..PAGES).map(old_image).collect();
        let all_new: Vec<u8> = (0..PAGES).map(new_image).collect();
        assert!(
            firsts == all_old || firsts == all_new,
            "crash at op {op} left a mixed state {firsts:?} (recovery: {recovery:?})"
        );
        if firsts == all_new {
            new_runs += 1;
            // The commit reached its durability point; if the caller saw
            // an error it was in the apply phase, which replay finished.
        } else {
            old_runs += 1;
            assert!(result.is_err(), "an aborted commit must report failure");
        }

        // Recovery is idempotent: a second open finds a clean journal and
        // the same bytes.
        let (_, again) = Journal::open(&pool, journal.header_page()).unwrap();
        assert_eq!(again, Recovery::Clean);
        let again_firsts: Vec<u8> = ids
            .iter()
            .map(|&id| pool.with_page(id, |b| b[0]).unwrap())
            .collect();
        assert_eq!(firsts, again_firsts);
    }
    assert!(old_runs > 0, "early crashes must roll back");
    assert!(new_runs > 0, "late crashes must roll forward");
}

#[test]
fn committed_batches_survive_a_clean_restart() {
    let mem = Arc::new(MemDisk::new());
    let (pool, journal, ids) = setup(Arc::clone(&mem));
    commit_new_images(&pool, journal, &ids).unwrap();
    drop(pool);

    let pool = Arc::new(BufferPool::new(Arc::clone(&mem), 8));
    let (_, recovery) = Journal::open(&pool, journal.header_page()).unwrap();
    assert_eq!(recovery, Recovery::Clean);
    for (i, &id) in ids.iter().enumerate() {
        pool.with_page(id, |b| assert!(b.iter().all(|&x| x == new_image(i))))
            .unwrap();
    }
}
