//! Multi-threaded stress tests for the sharded buffer pool: the pool must
//! stay a transparent, integrity-checking cache under concurrent readers
//! and writers, eviction pressure, and in-flight (pinned) loads.

use ann_store::{BufferPool, DiskBackend, MemDisk, PrefetchConfig, StoreError, FRAME_SIZE, PAGE_SIZE};
use std::sync::Arc;

/// Concurrent readers over every page plus one writer per shard mutating
/// its own disjoint page: reads always observe either the old or the new
/// value of the writer's page, never torn bytes, and every other page
/// stays byte-stable.
#[test]
fn concurrent_readers_and_per_shard_writers() {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 16));
    let shards = pool.num_shards();
    let pages: Vec<u32> = (0..(shards as u32 * 2)).map(|_| pool.allocate().unwrap()).collect();
    for &p in &pages {
        pool.with_page_mut(p, |b| b.fill(0xAB)).unwrap();
    }

    std::thread::scope(|s| {
        // One writer per shard: repeatedly rewrites page `i` (pages 0..shards
        // hit distinct shards under modulo striping) with a uniform value.
        for w in 0..shards as u32 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                for round in 0..200u32 {
                    let v = (round % 251) as u8;
                    pool.with_page_mut(w, |b| b.fill(v)).unwrap();
                }
            });
        }
        // Readers sweep all pages and check every page is uniform (writers
        // fill whole pages, so a mixed page means a torn read).
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let pages = pages.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    for &p in &pages {
                        pool.with_page(p, |b| {
                            let first = b[0];
                            assert!(
                                b.iter().all(|&x| x == first),
                                "torn read on page {p}"
                            );
                            if p >= pool.num_shards() as u32 {
                                assert_eq!(first, 0xAB, "non-writer page changed");
                            }
                        })
                        .unwrap();
                    }
                }
            });
        }
    });

    let s = pool.stats();
    assert_eq!(
        s.pool_hits + s.pool_misses,
        s.logical_reads,
        "every logical read is exactly one hit or one miss"
    );
}

/// Heavy eviction pressure from many threads over a tiny pool: all data
/// survives the thrash byte-for-byte, and the pool never loses a page.
#[test]
fn eviction_thrash_preserves_contents() {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 4));
    let pages: Vec<u32> = (0..64).map(|_| pool.allocate().unwrap()).collect();
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |b| b.fill(i as u8)).unwrap();
    }

    std::thread::scope(|s| {
        for t in 0..8usize {
            let pool = Arc::clone(&pool);
            let pages = pages.clone();
            s.spawn(move || {
                // Each thread sweeps in a different order to maximize
                // cross-shard eviction interleavings.
                for round in 0..50 {
                    for (i, &p) in pages.iter().enumerate().skip((t + round) % 7) {
                        let got = pool.with_page(p, |b| b[0]).unwrap();
                        assert_eq!(got, i as u8, "page {p} lost its contents");
                    }
                }
            });
        }
    });

    // After the storm every page still reads back exactly.
    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(pool.with_page(p, |b| b[0]).unwrap(), i as u8);
    }
    let s = pool.stats();
    assert!(s.physical_reads > 0, "a 4-frame pool must have thrashed");
    assert_eq!(s.pool_hits + s.pool_misses, s.logical_reads);
}

/// Many threads cold-reading the *same* page concurrently: the load is
/// performed once (waiters block on the pinned in-flight frame rather
/// than issuing duplicate reads), and everyone sees the same bytes.
#[test]
fn concurrent_cold_reads_of_one_page_fault_once() {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 8));
    let page = pool.allocate().unwrap();
    pool.with_page_mut(page, |b| b.fill(0x5A)).unwrap();
    pool.clear().unwrap();
    pool.reset_stats();

    std::thread::scope(|s| {
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let v = pool.with_page(page, |b| b[0]).unwrap();
                assert_eq!(v, 0x5A);
            });
        }
    });

    let s = pool.stats();
    assert_eq!(
        s.physical_reads, 1,
        "one loader reads; waiting threads reuse the pinned frame"
    );
    assert_eq!(s.pool_misses, 1, "only the loader counts a miss");
    assert_eq!(s.logical_reads, 8);
}

/// Checksum verification under concurrency: a page corrupted behind the
/// pool's back fails for every thread — via a CRC check on a physical
/// read or, once the first failure quarantines the page, via the
/// quarantine fast path — and healthy pages on the same shard keep
/// working.
#[test]
fn corruption_detected_by_every_concurrent_reader() {
    let mem = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(Arc::clone(&mem), 2));
    let bad = pool.allocate().unwrap();
    // A healthy page in the same shard (same residue class mod shards).
    let mut healthy = pool.allocate().unwrap();
    while healthy as usize % pool.num_shards() != bad as usize % pool.num_shards() {
        healthy = pool.allocate().unwrap();
    }
    pool.with_page_mut(bad, |b| b[0] = 1).unwrap();
    pool.with_page_mut(healthy, |b| b[0] = 2).unwrap();
    pool.clear().unwrap();

    // Flip a payload byte behind the pool's back.
    let mut frame = vec![0u8; FRAME_SIZE];
    mem.read_page(bad, &mut frame).unwrap();
    frame[123] ^= 0xFF;
    mem.write_page(bad, &frame).unwrap();
    pool.reset_stats();

    std::thread::scope(|s| {
        for _ in 0..6 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                for _ in 0..20 {
                    match pool.with_page(bad, |_| ()) {
                        Err(StoreError::Corrupt { page, .. }) => assert_eq!(page, Some(bad)),
                        other => panic!("corrupt page served: {other:?}"),
                    }
                    assert_eq!(pool.with_page(healthy, |b| b[0]).unwrap(), 2);
                }
            });
        }
    });

    let s = pool.stats();
    assert!(
        s.checksum_failures >= 1,
        "at least the first attempt was CRC-checked against the media"
    );
    assert_eq!(
        s.checksum_failures + s.quarantine_hits,
        6 * 20,
        "every attempt on the bad page either failed its CRC check or was \
         rejected fast by the quarantine"
    );
    assert!(
        s.quarantined_pages >= 1,
        "the first CRC failure quarantined the page"
    );
    assert!(
        s.physical_reads >= 1,
        "the healthy page faulted in through a verified read"
    );
}

/// `set_capacity` and `clear` racing against readers: the pool keeps
/// serving correct bytes throughout, and ends within the final budget.
#[test]
fn resize_and_clear_race_with_readers() {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 32));
    let pages: Vec<u32> = (0..32).map(|_| pool.allocate().unwrap()).collect();
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |b| b.fill(i as u8)).unwrap();
    }

    std::thread::scope(|s| {
        for _ in 0..6 {
            let pool = Arc::clone(&pool);
            let pages = pages.clone();
            s.spawn(move || {
                for _ in 0..30 {
                    for (i, &p) in pages.iter().enumerate() {
                        assert_eq!(pool.with_page(p, |b| b[0]).unwrap(), i as u8);
                    }
                }
            });
        }
        let pool = Arc::clone(&pool);
        s.spawn(move || {
            for round in 0..20 {
                pool.set_capacity(if round % 2 == 0 { 8 } else { 32 }).unwrap();
                pool.clear().unwrap();
            }
        });
    });

    for (i, &p) in pages.iter().enumerate() {
        assert_eq!(pool.with_page(p, |b| b[0]).unwrap(), i as u8);
    }
}

/// The contention counter actually observes contention when many threads
/// hammer one shard, and stays a plausible subset of lock acquisitions.
#[test]
fn contention_counter_moves_under_single_shard_load() {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 8));
    let page = pool.allocate().unwrap();
    pool.with_page_mut(page, |b| b[0] = 7).unwrap();
    pool.reset_stats();

    std::thread::scope(|s| {
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                for _ in 0..5_000 {
                    // Tiny closure, same page, same shard: the lock is the
                    // whole story.
                    assert_eq!(pool.with_page(page, |b| b[0]).unwrap(), 7);
                }
            });
        }
    });

    let s = pool.stats();
    assert_eq!(s.logical_reads, 40_000);
    assert!(
        s.lock_contention <= s.logical_reads,
        "contention events are a subset of accesses"
    );
    // Not asserted > 0: a machine could in principle schedule the threads
    // serially. Printed for eyeballing in CI logs instead.
    eprintln!("single-shard contention events: {}", s.lock_contention);
}

/// Scan resistance under concurrency: readers hammer a small hot working
/// set while another thread floods the pool with readahead hints for a
/// sweep eight times the pool's capacity. The speculative flood must
/// never displace the hot set — prefetched frames enter at the cold end
/// of the LRU and the pump stalls once the spare frames are full — so
/// the readers stay at a 100% hit rate for the whole storm, and demand
/// pressure afterwards reclaims the speculative frames first.
#[test]
fn prefetch_flood_cannot_displace_the_hot_working_set() {
    // Single shard so the hot set and the sweep share one LRU list and
    // the frame arithmetic below is exact.
    let pool = Arc::new(BufferPool::with_shards(MemDisk::new(), 8, 1));
    let hot: Vec<u32> = (0..4).map(|_| pool.allocate().unwrap()).collect();
    let sweep: Vec<u32> = (0..64).map(|_| pool.allocate().unwrap()).collect();
    for (i, &p) in hot.iter().enumerate() {
        pool.with_page_mut(p, |b| b.fill(i as u8 + 1)).unwrap();
    }
    pool.clear().unwrap();
    pool.enable_prefetch(PrefetchConfig {
        max_inflight: 4,
        batch: 4,
    });
    // Warm the hot set, then zero the counters: from here on, any demand
    // miss means the flood pushed a hot page out.
    for &p in &hot {
        pool.with_page(p, |_| ()).unwrap();
    }
    pool.reset_stats();

    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let hot = hot.clone();
            s.spawn(move || {
                for _ in 0..2_000 {
                    for (i, &p) in hot.iter().enumerate() {
                        assert_eq!(pool.with_page(p, |b| b[0]).unwrap(), i as u8 + 1);
                    }
                }
            });
        }
        // The flood: every sweep page hinted over and over. Only the four
        // spare frames can ever hold speculative pages; the rest of the
        // hints queue up (bounded) or are dropped.
        let pool = Arc::clone(&pool);
        let sweep = sweep.clone();
        s.spawn(move || {
            for _ in 0..50 {
                for chunk in sweep.chunks(4) {
                    let hints: Vec<_> = chunk.iter().map(|&p| (p, 1)).collect();
                    pool.prefetch(&hints);
                }
            }
        });
    });

    let s = pool.stats();
    assert_eq!(s.pool_misses, 0, "the flood never displaced a hot page");
    assert_eq!(s.logical_reads, 4 * 2_000 * 4);
    assert_eq!(
        s.prefetch_issued, 4,
        "pump filled the spare frames once, then stalled at the ceiling"
    );
    assert_eq!(s.prefetch_wasted, 0, "the pump never churned its window");
    assert_eq!(pool.prefetch_inflight(), 4);

    // Demand pressure reclaims the speculative frames first: four misses
    // on never-prefetched pages evict exactly the four unclaimed frames,
    // and the hot set is still resident afterwards.
    pool.disable_prefetch();
    for &p in &sweep[60..64] {
        pool.with_page(p, |_| ()).unwrap();
    }
    let s = pool.stats();
    assert_eq!(s.pool_misses, 4);
    assert_eq!(s.prefetch_wasted, 4, "speculative frames were first out");
    for (i, &p) in hot.iter().enumerate() {
        assert_eq!(pool.with_page(p, |b| b[0]).unwrap(), i as u8 + 1);
    }
    assert_eq!(pool.stats().pool_misses, 4, "hot set survived the scan");
}

/// Full-page payloads survive concurrent eviction cycles byte-for-byte
/// (the frame CRC is recomputed on each eviction write and verified on
/// each fault-in).
#[test]
fn full_page_payloads_roundtrip_under_concurrency() {
    let pool = Arc::new(BufferPool::new(MemDisk::new(), 2));
    let pages: Vec<u32> = (0..8).map(|_| pool.allocate().unwrap()).collect();
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |b| {
            for (j, byte) in b.iter_mut().enumerate() {
                *byte = (i + j) as u8;
            }
        })
        .unwrap();
    }

    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let pages = pages.clone();
            s.spawn(move || {
                for _ in 0..25 {
                    for (i, &p) in pages.iter().enumerate() {
                        pool.with_page(p, |b| {
                            assert_eq!(b.len(), PAGE_SIZE);
                            for (j, &byte) in b.iter().enumerate() {
                                assert_eq!(byte, (i + j) as u8, "page {p} byte {j}");
                            }
                        })
                        .unwrap();
                    }
                }
            });
        }
    });
}
