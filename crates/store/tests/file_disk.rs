//! `FileDisk` integration coverage: round-trips, reopen-read-back,
//! out-of-bounds handling, and corruption detection through the pool,
//! all under a scratch directory that is removed afterwards.

use ann_store::{BufferPool, FileDisk, StoreError, FRAME_SIZE, PAGE_SIZE};
use std::path::PathBuf;

/// A unique scratch path under the OS temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("ann_store_file_disk_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        Scratch(p)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn pool_round_trip_over_file_disk() {
    let scratch = Scratch::new("roundtrip");
    let pool = BufferPool::new(FileDisk::create(scratch.path()).unwrap(), 4);
    let mut pages = Vec::new();
    for i in 0..10u8 {
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |bytes| {
            bytes[0] = i;
            bytes[PAGE_SIZE - 1] = 0xA0 | i;
        })
        .unwrap();
        pages.push(id);
    }
    // More pages than pool frames: evictions already exercised the disk.
    for (i, &id) in pages.iter().enumerate() {
        pool.with_page(id, |bytes| {
            assert_eq!(bytes[0], i as u8);
            assert_eq!(bytes[PAGE_SIZE - 1], 0xA0 | i as u8);
        })
        .unwrap();
    }
}

#[test]
fn reopen_reads_back_flushed_pages() {
    let scratch = Scratch::new("reopen");
    {
        let pool = BufferPool::new(FileDisk::create(scratch.path()).unwrap(), 8);
        for i in 0..5u8 {
            let id = pool.allocate().unwrap();
            pool.with_page_mut(id, |bytes| bytes[100] = i + 1).unwrap();
        }
        pool.flush_all().unwrap();
    }
    let disk = FileDisk::open(scratch.path()).unwrap();
    let pool = BufferPool::new(disk, 8);
    assert_eq!(pool.num_pages(), 5);
    for i in 0..5u8 {
        pool.with_page(i as u32, |bytes| assert_eq!(bytes[100], i + 1))
            .unwrap();
    }
}

#[test]
fn out_of_bounds_pages_are_rejected() {
    let scratch = Scratch::new("oob");
    let pool = BufferPool::new(FileDisk::create(scratch.path()).unwrap(), 4);
    let id = pool.allocate().unwrap();
    assert!(matches!(
        pool.with_page(id + 1, |_| ()),
        Err(StoreError::PageOutOfBounds(_))
    ));
    assert!(matches!(
        pool.with_page_mut(id + 7, |_| ()),
        Err(StoreError::PageOutOfBounds(_))
    ));
}

#[test]
fn non_frame_aligned_file_is_rejected_on_open() {
    let scratch = Scratch::new("aligned");
    std::fs::write(scratch.path(), vec![0u8; FRAME_SIZE + 17]).unwrap();
    assert!(matches!(
        FileDisk::open(scratch.path()),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn on_disk_damage_is_detected_as_corrupt() {
    let scratch = Scratch::new("damage");
    {
        let pool = BufferPool::new(FileDisk::create(scratch.path()).unwrap(), 4);
        let id = pool.allocate().unwrap();
        pool.with_page_mut(id, |bytes| bytes[0] = 0x5A).unwrap();
        pool.flush_all().unwrap();
    }
    // Flip one payload byte directly in the file.
    let mut raw = std::fs::read(scratch.path()).unwrap();
    raw[10] ^= 0x01;
    std::fs::write(scratch.path(), &raw).unwrap();

    let pool = BufferPool::new(FileDisk::open(scratch.path()).unwrap(), 4);
    match pool.with_page(0, |_| ()) {
        Err(StoreError::Corrupt { page, .. }) => assert_eq!(page, Some(0)),
        other => panic!("damaged page must read as Corrupt, got {other:?}"),
    }
    assert_eq!(pool.stats().checksum_failures, 1);
}
