//! The classical MBR ↔ MBR distance metrics (paper §3.1.1 and Figure 2a).
//!
//! All of these treat an MBR as the *set* of points it covers and bound the
//! Euclidean distance between one point from each MBR:
//!
//! * [`min_min_dist`] — smallest possible distance between any pair
//!   (the lower-bound metric every ANN algorithm prunes with);
//! * [`max_max_dist`] — largest possible distance between any pair
//!   (the traditional, loose upper bound the paper improves upon);
//! * [`min_max_dist`] — an upper bound on the distance of *at least one*
//!   pair, generalizing Roussopoulos' point-to-MBR MINMAXDIST to two MBRs
//!   following Corral et al. (SIGMOD 2000). Included for completeness; the
//!   paper notes it is *not* a sound upper bound for ANN pruning (a claim
//!   the tests in this module demonstrate).

use crate::nxndist::max_dist_d;
use crate::Mbr;

/// Squared `MINMINDIST(M, N)`: the squared minimum distance between any
/// point in `m` and any point in `n`. Zero when the rectangles intersect.
#[inline]
pub fn min_min_dist_sq<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    let mut acc = 0.0;
    for d in 0..D {
        // Gap between the two intervals in dimension d (0 when they overlap).
        let gap = (m.lo[d] - n.hi[d]).max(n.lo[d] - m.hi[d]).max(0.0);
        acc += gap * gap;
    }
    acc
}

/// `MINMINDIST(M, N)` — see [`min_min_dist_sq`].
#[inline]
pub fn min_min_dist<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    min_min_dist_sq(m, n).sqrt()
}

/// Early-exit variant of [`min_min_dist_sq`] for pruning checks: returns
/// `Some(MINMINDIST²)` when it is `<= bound_sq`, or `None` as soon as the
/// running per-dimension sum exceeds `bound_sq`.
///
/// Per-dimension contributions are non-negative and accumulated in the
/// same order as [`min_min_dist_sq`], so the result is bit-exact with the
/// full computation whenever it is produced, and `None` is returned *iff*
/// the full `MINMINDIST² > bound_sq` — callers deciding "does this entry
/// survive the bound" get exactly the same answer, just without paying for
/// the remaining dimensions of hopeless entries. The savings grow with
/// `D`, which is where LPQ filtering spends its time on high-dimensional
/// workloads.
#[inline]
pub fn min_min_dist_sq_within<const D: usize>(m: &Mbr<D>, n: &Mbr<D>, bound_sq: f64) -> Option<f64> {
    let mut acc = 0.0;
    for d in 0..D {
        let gap = (m.lo[d] - n.hi[d]).max(n.lo[d] - m.hi[d]).max(0.0);
        acc += gap * gap;
        if acc > bound_sq {
            return None;
        }
    }
    Some(acc)
}

/// Squared `MAXMAXDIST(M, N)`: the squared maximum possible distance between
/// any point in `m` and any point in `n`.
///
/// This is the pruning upper bound used by previous index-based ANN methods;
/// the paper's NXNDIST ([`crate::nxn_dist`]) is never larger.
#[inline]
pub fn max_max_dist_sq<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    let mut acc = 0.0;
    for d in 0..D {
        let md = max_dist_d(m, n, d);
        acc += md * md;
    }
    acc
}

/// `MAXMAXDIST(M, N)` — see [`max_max_dist_sq`].
#[inline]
pub fn max_max_dist<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    max_max_dist_sq(m, n).sqrt()
}

/// Squared `MINMAXDIST(M, N)`: an upper bound on the squared distance
/// between *at least one* pair of points, one from each MBR.
///
/// Because every face of a *minimum* bounding rectangle touches at least one
/// point of the underlying set, fixing one dimension `d` to a pair of faces
/// (one face of `m`, one of `n`) pins the distance in that dimension exactly
/// while every other dimension is bounded by `MAXDIST_j`. The metric takes
/// the best (smallest) such guarantee over all dimensions and face pairs.
#[inline]
pub fn min_max_dist_sq<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    // Total of squared per-dimension maxima; each candidate replaces one
    // dimension's MAXDIST² with the pinned face-to-face separation².
    let mut total = 0.0;
    let mut max_sq = [0.0; D];
    for d in 0..D {
        let md = max_dist_d(m, n, d);
        max_sq[d] = md * md;
        total += max_sq[d];
    }
    let mut best = f64::INFINITY;
    for d in 0..D {
        let faces_m = [m.lo[d], m.hi[d]];
        let faces_n = [n.lo[d], n.hi[d]];
        let mut pinned = f64::INFINITY;
        for a in faces_m {
            for b in faces_n {
                pinned = pinned.min((a - b).abs());
            }
        }
        best = best.min(total - max_sq[d] + pinned * pinned);
    }
    best
}

/// `MINMAXDIST(M, N)` — see [`min_max_dist_sq`].
#[inline]
pub fn min_max_dist<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    min_max_dist_sq(m, n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nxn_dist, Point};

    #[test]
    fn min_min_dist_disjoint() {
        // Unit squares separated by a (3, 4) offset: distance 5.
        let m = Mbr::new([0.0, 0.0], [1.0, 1.0]);
        let n = Mbr::new([4.0, 5.0], [5.0, 6.0]);
        assert_eq!(min_min_dist(&m, &n), 5.0);
    }

    #[test]
    fn min_min_dist_zero_when_overlapping() {
        let m = Mbr::new([0.0, 0.0], [4.0, 4.0]);
        let n = Mbr::new([2.0, 2.0], [6.0, 6.0]);
        assert_eq!(min_min_dist(&m, &n), 0.0);
        // Touching boundaries also give zero.
        let t = Mbr::new([4.0, 0.0], [5.0, 4.0]);
        assert_eq!(min_min_dist(&m, &t), 0.0);
    }

    #[test]
    fn max_max_dist_corner_to_corner() {
        let m = Mbr::new([0.0, 0.0], [1.0, 1.0]);
        let n = Mbr::new([4.0, 5.0], [5.0, 6.0]);
        // Farthest corners are (0,0) and (5,6).
        assert_eq!(max_max_dist_sq(&m, &n), 25.0 + 36.0);
    }

    #[test]
    fn max_max_dist_of_identical_mbrs_is_diagonal() {
        let m = Mbr::new([0.0, 0.0], [3.0, 4.0]);
        assert_eq!(max_max_dist(&m, &m), 5.0);
    }

    #[test]
    fn point_degenerate_mbrs_reduce_to_point_distance() {
        let p = Mbr::from_point(&Point::new([1.0, 2.0]));
        let q = Mbr::from_point(&Point::new([4.0, 6.0]));
        assert_eq!(min_min_dist(&p, &q), 5.0);
        assert_eq!(max_max_dist(&p, &q), 5.0);
        assert_eq!(min_max_dist(&p, &q), 5.0);
        assert_eq!(nxn_dist(&p, &q), 5.0);
    }

    #[test]
    fn figure_2a_metric_ordering() {
        // The ordering shown in the paper's Figure 2(a):
        // MINMINDIST <= MINMAXDIST, NXNDIST <= MAXMAXDIST.
        let m = Mbr::new([0.0, 4.0], [3.0, 7.0]);
        let n = Mbr::new([5.0, 0.0], [9.0, 2.0]);
        let minmin = min_min_dist(&m, &n);
        let minmax = min_max_dist(&m, &n);
        let nxn = nxn_dist(&m, &n);
        let maxmax = max_max_dist(&m, &n);
        assert!(minmin <= minmax);
        assert!(minmax <= maxmax);
        assert!(minmin <= nxn);
        assert!(nxn <= maxmax);
    }

    #[test]
    fn min_max_dist_is_not_a_sound_ann_upper_bound() {
        // The paper (§3.1.1) notes MINMAXDIST "is not suitable as a pruning
        // upper bound for ANN": it only guarantees *one* pair within the
        // bound, not a neighbor for *every* point of M. Demonstrate with a
        // concrete instance where a point of M has its nearest possible
        // neighbor in N farther than MINMAXDIST(M, N).
        let m = Mbr::new([0.0, 0.0], [10.0, 0.0]);
        let n = Mbr::new([0.0, 1.0], [0.0, 1.0]); // single point (0, 1)
        let mm = min_max_dist(&m, &n);
        // r = (10, 0) in M; its only candidate neighbor is (0, 1).
        let r = Point::new([10.0, 0.0]);
        let s = Point::new([0.0, 1.0]);
        assert!(r.dist(&s) > mm, "{} should exceed {}", r.dist(&s), mm);
        // NXNDIST, by contrast, covers the worst point of M.
        assert!(r.dist(&s) <= nxn_dist(&m, &n) + 1e-12);
    }
}
