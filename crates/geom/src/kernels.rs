//! Batched distance kernels over structure-of-arrays (SoA) candidate sets.
//!
//! The ANN inner loops all have the same shape: one owner (a query point or
//! an LPQ owner MBR) scanned against *many* candidates (the entries of a
//! decoded node, the points of a grid cell). The scalar metrics in
//! [`crate::dist`] / [`crate::nxndist`] evaluate one candidate at a time
//! from array-of-structs entries; the kernels here take the candidates as
//! column-major slices ([`SoaPoints`] / [`SoaMbrs`]) and process them in
//! blocks of [`LANES`] with one accumulator per candidate.
//!
//! # The bit-identity contract
//!
//! Every kernel is **bit-identical** to its scalar counterpart: for every
//! candidate `i`, the produced `f64` has exactly the bits that
//! `min_min_dist_sq(m, &candidate_i)` (etc.) would produce. This holds by
//! construction, not by accident:
//!
//! * blocks are unrolled **across candidates**, never across dimensions —
//!   each candidate's accumulator sees its per-dimension contributions in
//!   the same `d = 0..D` order as the scalar loop, so IEEE-754 rounding is
//!   performed in the same sequence;
//! * each per-dimension contribution uses the exact same expression tree as
//!   the scalar metric (`(m.lo[d] - hi).max(lo - m.hi[d]).max(0.0)` for
//!   MINMINDIST, the Algorithm-1 endpoint/midpoint evaluation for NXNDIST,
//!   ...), so the individual contributions are bit-equal too;
//! * block remainders fall back to the scalar functions on a gathered
//!   [`Mbr`]/[`Point`], which is trivially identical.
//!
//! The `_within` variants replace the scalar early-exit
//! ([`crate::min_min_dist_sq_within`]) with a *compute-full, decide-after*
//! scheme: per-dimension contributions are non-negative, so the scalar
//! early exit returns `None` **iff** the full sum exceeds the bound, and
//! when it returns `Some(v)`, `v` *is* the full sum. Comparing the batch
//! kernel's full value against the same bound therefore reproduces both the
//! decision and the surviving value bit-for-bit. (A block may stop early
//! once every lane's running sum exceeds the bound; such lanes are already
//! classified as pruned and their partial value is never consumed.)

use crate::{Mbr, Point};

/// Candidates processed per unrolled block. Sixteen independent `f64`
/// accumulators fill four 256-bit vector registers, and a 16-wide block
/// amortizes the per-block slice checks far enough that they disappear
/// from the profile; the value is a tuning knob, not a correctness
/// parameter (remainders fall back to the scalar metrics either way).
pub const LANES: usize = 16;

/// A borrowed column-major view of `len` points: coordinate `d` of point
/// `i` lives at `cols[d * len + i]`.
#[derive(Clone, Copy, Debug)]
pub struct SoaPoints<'a> {
    /// Number of points.
    pub len: usize,
    /// Column-major coordinates, `D * len` long.
    pub cols: &'a [f64],
}

impl<'a> SoaPoints<'a> {
    /// Wraps column-major point coordinates.
    #[inline]
    pub fn new(len: usize, cols: &'a [f64]) -> Self {
        SoaPoints { len, cols }
    }

    /// Views the points as degenerate MBRs (`lo == hi` alias the same
    /// columns) — exactly how the scalar code treats objects via
    /// [`Mbr::from_point`].
    #[inline]
    pub fn as_mbrs(&self) -> SoaMbrs<'a> {
        SoaMbrs {
            len: self.len,
            lo: self.cols,
            hi: self.cols,
        }
    }

    /// Gathers point `i` back into AoS form.
    #[inline]
    pub fn point<const D: usize>(&self, i: usize) -> Point<D> {
        debug_assert_eq!(self.cols.len(), D * self.len);
        let mut c = [0.0; D];
        for d in 0..D {
            c[d] = self.cols[d * self.len + i];
        }
        Point(c)
    }
}

/// A borrowed column-major view of `len` MBRs: bound `d` of rectangle `i`
/// lives at `lo[d * len + i]` / `hi[d * len + i]`. Degenerate (point) MBRs
/// may alias `lo` and `hi` to the same slice.
#[derive(Clone, Copy, Debug)]
pub struct SoaMbrs<'a> {
    /// Number of rectangles.
    pub len: usize,
    /// Column-major lower bounds, `D * len` long.
    pub lo: &'a [f64],
    /// Column-major upper bounds, `D * len` long.
    pub hi: &'a [f64],
}

impl<'a> SoaMbrs<'a> {
    /// Wraps column-major MBR bounds.
    #[inline]
    pub fn new(len: usize, lo: &'a [f64], hi: &'a [f64]) -> Self {
        SoaMbrs { len, lo, hi }
    }

    /// Gathers rectangle `i` back into AoS form.
    #[inline]
    pub fn mbr<const D: usize>(&self, i: usize) -> Mbr<D> {
        debug_assert_eq!(self.lo.len(), D * self.len);
        debug_assert_eq!(self.hi.len(), D * self.len);
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            lo[d] = self.lo[d * self.len + i];
            hi[d] = self.hi[d * self.len + i];
        }
        Mbr { lo, hi }
    }
}

#[inline]
fn prepare(out: &mut Vec<f64>, len: usize) {
    // Every kernel overwrites `out[0..len]` in full, so a warm buffer of
    // the right length needs no zero-fill pass — that pass would double
    // the memory traffic of the cheap kernels (D=2 DIST² writes 8 bytes
    // per candidate; zeroing first writes another 8).
    if out.len() != len {
        out.clear();
        out.resize(len, 0.0);
    }
}

/// Borrows the `LANES`-wide window of column `d` starting at candidate
/// `i` as a fixed-size array, hoisting the bounds check out of the
/// unrolled lane loops (an indexed `cols[base + l]` per lane defeats
/// autovectorization).
#[inline(always)]
fn lanes(cols: &[f64], base: usize) -> &[f64; LANES] {
    cols[base..base + LANES].try_into().expect("LANES window")
}

/// Batched [`Point::dist_sq`]: `out[i] = q.dist_sq(points[i])`, bit-exact.
pub fn dist_sq_batch<const D: usize>(q: &Point<D>, points: &SoaPoints<'_>, out: &mut Vec<f64>) {
    let n = points.len;
    debug_assert_eq!(points.cols.len(), D * n);
    prepare(out, n);
    let cols = points.cols;
    let mut i = 0;
    while i + LANES <= n {
        let mut acc = [0.0f64; LANES];
        for d in 0..D {
            let col = lanes(cols, d * n + i);
            for l in 0..LANES {
                // Same expression as the scalar loop in `Point::dist_sq`;
                // `q - p` vs `p - q` would also be bit-equal after
                // squaring, but there is no reason to differ at all.
                let diff = q.0[d] - col[l];
                acc[l] += diff * diff;
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    while i < n {
        out[i] = q.dist_sq(&points.point::<D>(i));
        i += 1;
    }
}

/// Batched [`crate::min_min_dist_sq`]: `out[i] = MINMINDIST²(m, mbrs[i])`,
/// bit-exact.
pub fn min_min_dist_sq_batch<const D: usize>(m: &Mbr<D>, mbrs: &SoaMbrs<'_>, out: &mut Vec<f64>) {
    let n = mbrs.len;
    debug_assert_eq!(mbrs.lo.len(), D * n);
    prepare(out, n);
    let mut i = 0;
    while i + LANES <= n {
        let mut acc = [0.0f64; LANES];
        for d in 0..D {
            let lo = lanes(mbrs.lo, d * n + i);
            let hi = lanes(mbrs.hi, d * n + i);
            for l in 0..LANES {
                let gap = (m.lo[d] - hi[l]).max(lo[l] - m.hi[d]).max(0.0);
                acc[l] += gap * gap;
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    while i < n {
        out[i] = crate::min_min_dist_sq(m, &mbrs.mbr::<D>(i));
        i += 1;
    }
}

/// Batched counterpart of [`crate::min_min_dist_sq_within`], shared bound.
///
/// Where the scalar early exit returns `None`, this kernel leaves a value
/// `> bound_sq` in `out[i]` (the full sum, or a partial sum that already
/// exceeds the bound); where the scalar returns `Some(v)`, `out[i]` is
/// bit-equal to `v`. Callers therefore recover the scalar decision exactly
/// as `out[i] <= bound_sq`.
pub fn min_min_dist_sq_within_batch<const D: usize>(
    m: &Mbr<D>,
    mbrs: &SoaMbrs<'_>,
    bound_sq: f64,
    out: &mut Vec<f64>,
) {
    let n = mbrs.len;
    debug_assert_eq!(mbrs.lo.len(), D * n);
    prepare(out, n);
    let mut i = 0;
    while i + LANES <= n {
        let mut acc = [0.0f64; LANES];
        for d in 0..D {
            let lo = lanes(mbrs.lo, d * n + i);
            let hi = lanes(mbrs.hi, d * n + i);
            for l in 0..LANES {
                let gap = (m.lo[d] - hi[l]).max(lo[l] - m.hi[d]).max(0.0);
                acc[l] += gap * gap;
            }
            // Contributions are non-negative, so once every lane exceeds
            // the bound the block's classification is settled.
            if acc.iter().all(|&a| a > bound_sq) {
                break;
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    while i < n {
        let v = crate::min_min_dist_sq_within(m, &mbrs.mbr::<D>(i), bound_sq);
        out[i] = v.unwrap_or(f64::INFINITY);
        i += 1;
    }
}

/// Batched [`crate::max_max_dist_sq`]: `out[i] = MAXMAXDIST²(m, mbrs[i])`,
/// bit-exact.
pub fn max_max_dist_sq_batch<const D: usize>(m: &Mbr<D>, mbrs: &SoaMbrs<'_>, out: &mut Vec<f64>) {
    let n = mbrs.len;
    debug_assert_eq!(mbrs.lo.len(), D * n);
    prepare(out, n);
    let mut i = 0;
    while i + LANES <= n {
        let mut acc = [0.0f64; LANES];
        for d in 0..D {
            let lo = lanes(mbrs.lo, d * n + i);
            let hi = lanes(mbrs.hi, d * n + i);
            for l in 0..LANES {
                // `max_dist_d`, inlined against the columns.
                let md = (m.hi[d] - lo[l]).max(hi[l] - m.lo[d]);
                acc[l] += md * md;
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    while i < n {
        out[i] = crate::max_max_dist_sq(m, &mbrs.mbr::<D>(i));
        i += 1;
    }
}

/// Batched [`crate::nxn_dist_sq`]: `out[i] = NXNDIST²(m, mbrs[i])`,
/// bit-exact — including the final `MINMINDIST` cancellation clamp.
pub fn nxn_dist_sq_batch<const D: usize>(m: &Mbr<D>, mbrs: &SoaMbrs<'_>, out: &mut Vec<f64>) {
    let n = mbrs.len;
    debug_assert_eq!(mbrs.lo.len(), D * n);
    prepare(out, n);
    let mut i = 0;
    while i + LANES <= n {
        // First pass (Algorithm 1 lines 3-5) per lane: S = Σ MAXDIST_d²,
        // fused with the cancellation floor Σ gap_d² (both read the same
        // columns, and each accumulator still sees its contributions in
        // ascending-d order, so both sums round exactly like their
        // scalar counterparts).
        let mut s = [0.0f64; LANES];
        let mut floor = [0.0f64; LANES];
        for d in 0..D {
            let lo = lanes(mbrs.lo, d * n + i);
            let hi = lanes(mbrs.hi, d * n + i);
            for l in 0..LANES {
                let md = (m.hi[d] - lo[l]).max(hi[l] - m.lo[d]);
                s[l] += md * md;
                let gap = (m.lo[d] - hi[l]).max(lo[l] - m.hi[d]).max(0.0);
                floor[l] += gap * gap;
            }
        }
        // Second pass (lines 6-9): swap each MAXDIST_d² for MAXMIN_d²,
        // keep the min. MAXDIST_d is recomputed from the same columns —
        // bit-equal to the first pass, and far cheaper than keeping a
        // D × LANES array of squares spilled across the block. The
        // midpoint test is written as a select so the lane loop stays
        // branchless.
        let mut min_s = s;
        for d in 0..D {
            let lo = lanes(mbrs.lo, d * n + i);
            let hi = lanes(mbrs.hi, d * n + i);
            let (lm, um) = (m.lo[d], m.hi[d]);
            for l in 0..LANES {
                let (ln, un) = (lo[l], hi[l]);
                let md = (um - ln).max(un - lm);
                let f = |p: f64| (p - ln).abs().min((p - un).abs());
                let ends = f(lm).max(f(um));
                let mid = 0.5 * (ln + un);
                let mm = if lm <= mid && mid <= um {
                    ends.max(f(mid))
                } else {
                    ends
                };
                min_s[l] = min_s[l].min(s[l] - md * md + mm * mm);
            }
        }
        // Cancellation clamp, exactly as the scalar NXNDIST applies it.
        let mut res = [0.0f64; LANES];
        for l in 0..LANES {
            res[l] = min_s[l].max(floor[l]);
        }
        out[i..i + LANES].copy_from_slice(&res);
        i += LANES;
    }
    while i < n {
        out[i] = crate::nxn_dist_sq(m, &mbrs.mbr::<D>(i));
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_max_dist_sq, min_min_dist_sq, min_min_dist_sq_within, nxn_dist_sq};

    /// Deterministic splitmix64 — keeps the tests seed-stable without a
    /// rand dependency.
    struct Rng(u64);
    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Adversarial candidate set: large offsets (cancellation), coincident
    /// points, degenerate and fat boxes. Returns (lo, hi) columns.
    fn gen_mbrs<const D: usize>(rng: &mut Rng, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut lo = vec![0.0; D * n];
        let mut hi = vec![0.0; D * n];
        for i in 0..n {
            let offset = match i % 4 {
                0 => 0.0,
                1 => 1e8,
                2 => -1e8,
                _ => 1e-8,
            };
            let degenerate = i % 3 == 0;
            for d in 0..D {
                let a = offset + rng.f64() * 10.0;
                let b = if degenerate {
                    a
                } else {
                    a + rng.f64() * 5.0
                };
                lo[d * n + i] = a.min(b);
                hi[d * n + i] = a.max(b);
            }
        }
        (lo, hi)
    }

    fn gen_owner<const D: usize>(rng: &mut Rng) -> Mbr<D> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for d in 0..D {
            let a = rng.f64() * 20.0 - 10.0;
            let b = a + rng.f64() * 8.0;
            lo[d] = a;
            hi[d] = b;
        }
        Mbr { lo, hi }
    }

    fn check_dims<const D: usize>(seed: u64) {
        let mut rng = Rng(seed);
        // Cover every block/remainder split around LANES.
        for n in [0, 1, 3, 4, 5, 7, 8, 13, 64] {
            let (lo, hi) = gen_mbrs::<D>(&mut rng, n);
            let mbrs = SoaMbrs::new(n, &lo, &hi);
            let m = gen_owner::<D>(&mut rng);
            let mut out = Vec::new();

            min_min_dist_sq_batch(&m, &mbrs, &mut out);
            for i in 0..n {
                let want = min_min_dist_sq(&m, &mbrs.mbr::<D>(i));
                assert_eq!(out[i].to_bits(), want.to_bits(), "minmin D={D} n={n} i={i}");
            }

            max_max_dist_sq_batch(&m, &mbrs, &mut out);
            for i in 0..n {
                let want = max_max_dist_sq(&m, &mbrs.mbr::<D>(i));
                assert_eq!(out[i].to_bits(), want.to_bits(), "maxmax D={D} n={n} i={i}");
            }

            nxn_dist_sq_batch(&m, &mbrs, &mut out);
            for i in 0..n {
                let want = nxn_dist_sq(&m, &mbrs.mbr::<D>(i));
                assert_eq!(out[i].to_bits(), want.to_bits(), "nxn D={D} n={n} i={i}");
            }

            for bound in [0.0, 1.0, 1e4, f64::INFINITY] {
                min_min_dist_sq_within_batch(&m, &mbrs, bound, &mut out);
                for i in 0..n {
                    match min_min_dist_sq_within(&m, &mbrs.mbr::<D>(i), bound) {
                        Some(v) => {
                            assert!(out[i] <= bound, "within D={D} n={n} i={i}");
                            assert_eq!(out[i].to_bits(), v.to_bits());
                        }
                        None => assert!(out[i] > bound, "within D={D} n={n} i={i}"),
                    }
                }
            }

            // Point distances against the same columns viewed as points.
            let pts = SoaPoints::new(n, &lo);
            let q = Point(m.lo);
            let mut dout = Vec::new();
            dist_sq_batch(&q, &pts, &mut dout);
            for i in 0..n {
                let want = q.dist_sq(&pts.point::<D>(i));
                assert_eq!(dout[i].to_bits(), want.to_bits(), "dist D={D} n={n} i={i}");
            }
        }
    }

    #[test]
    fn bit_identical_to_scalar_d1() {
        check_dims::<1>(0xD1);
    }

    #[test]
    fn bit_identical_to_scalar_d2() {
        check_dims::<2>(0xD2);
    }

    #[test]
    fn bit_identical_to_scalar_d8() {
        check_dims::<8>(0xD8);
    }

    #[test]
    fn point_view_matches_degenerate_mbrs() {
        let mut rng = Rng(7);
        let (cols, _) = gen_mbrs::<2>(&mut rng, 9);
        let pts = SoaPoints::new(9, &cols);
        let m = gen_owner::<2>(&mut rng);
        let mut a = Vec::new();
        let mut b = Vec::new();
        // dist_sq on a degenerate owner == min_min on point MBRs.
        let q = Point(m.lo);
        dist_sq_batch(&q, &pts, &mut a);
        min_min_dist_sq_batch(&Mbr::from_point(&q), &pts.as_mbrs(), &mut b);
        for i in 0..9 {
            assert_eq!(a[i].to_bits(), b[i].to_bits());
        }
    }

    #[test]
    fn output_vec_capacity_is_reused() {
        let mut rng = Rng(11);
        let (lo, hi) = gen_mbrs::<2>(&mut rng, 64);
        let mbrs = SoaMbrs::new(64, &lo, &hi);
        let m = gen_owner::<2>(&mut rng);
        let mut out = Vec::with_capacity(64);
        min_min_dist_sq_batch(&m, &mbrs, &mut out);
        let cap = out.capacity();
        for _ in 0..10 {
            min_min_dist_sq_batch(&m, &mbrs, &mut out);
            assert_eq!(out.capacity(), cap);
        }
    }
}
