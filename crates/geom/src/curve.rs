//! Space-filling curves over `D`-dimensional grids.
//!
//! Two curves are provided:
//!
//! * [`z_order`] — bit interleaving (Morton order); cheap and good enough
//!   for grouping nearby points.
//! * [`hilbert`] — the Hilbert curve via Skilling's transpose algorithm,
//!   with strictly better locality; used by the R*-tree's STR-adjacent bulk
//!   loader and by the BNN baseline to form spatially-coherent groups of
//!   query points.
//!
//! Both operate on integer grid coordinates; [`GridMapper`] quantizes
//! floating-point points into such a grid over a dataset's bounding box.

use crate::{Mbr, Point};

/// Maximum bits per dimension so that a `D`-dimensional key fits in `u128`.
#[inline]
fn bits_for<const D: usize>() -> u32 {
    (128 / D as u32).min(21)
}

/// Quantizes points of a bounded region into an integer grid, for use with
/// the space-filling curves in this module.
#[derive(Clone, Debug)]
pub struct GridMapper<const D: usize> {
    bounds: Mbr<D>,
    /// Grid resolution in bits per dimension.
    bits: u32,
    scale: [f64; D],
}

impl<const D: usize> GridMapper<D> {
    /// Creates a mapper over `bounds` with the maximum resolution that still
    /// packs a full `D`-dimensional key into 128 bits (capped at 21 bits per
    /// dimension).
    pub fn new(bounds: Mbr<D>) -> Self {
        let bits = bits_for::<D>();
        let cells = (1u64 << bits) as f64;
        let mut scale = [0.0; D];
        for d in 0..D {
            let ext = bounds.hi[d] - bounds.lo[d];
            scale[d] = if ext > 0.0 { cells / ext } else { 0.0 };
        }
        GridMapper {
            bounds,
            bits,
            scale,
        }
    }

    /// Grid resolution in bits per dimension.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantizes `p` into grid cell coordinates (clamped to the grid).
    #[inline]
    pub fn cell(&self, p: &Point<D>) -> [u32; D] {
        let max_cell = (1u64 << self.bits) - 1;
        let mut out = [0u32; D];
        for d in 0..D {
            let v = ((p.0[d] - self.bounds.lo[d]) * self.scale[d]) as i64;
            out[d] = v.clamp(0, max_cell as i64) as u32;
        }
        out
    }

    /// The Z-order (Morton) key of `p`.
    #[inline]
    pub fn z_key(&self, p: &Point<D>) -> u128 {
        z_order(&self.cell(p), self.bits)
    }

    /// The Hilbert key of `p`.
    #[inline]
    pub fn hilbert_key(&self, p: &Point<D>) -> u128 {
        hilbert(&self.cell(p), self.bits)
    }
}

/// Interleaves the low `bits` bits of each coordinate into a Morton key.
///
/// Bit `b` of dimension `d` lands at key position `b * D + (D - 1 - d)`, so
/// dimension 0 provides the most significant bit of each group.
pub fn z_order<const D: usize>(cell: &[u32; D], bits: u32) -> u128 {
    debug_assert!(bits as usize * D <= 128);
    let mut key = 0u128;
    for b in (0..bits).rev() {
        for (i, &c) in cell.iter().enumerate() {
            debug_assert!(i < D);
            key = (key << 1) | u128::from((c >> b) & 1);
        }
    }
    key
}

/// The Hilbert-curve index of a grid cell, via Skilling's transpose
/// algorithm (AIP Conf. Proc. 707, 2004).
///
/// Takes `D` coordinates of `bits` bits each and returns the scalar curve
/// position in `[0, 2^(D*bits))`. Distinct cells map to distinct positions
/// (the curve is a bijection), and curve-adjacent positions are always
/// grid-adjacent cells — the locality property that makes Hilbert grouping
/// effective.
pub fn hilbert<const D: usize>(cell: &[u32; D], bits: u32) -> u128 {
    debug_assert!(bits as usize * D <= 128 && bits <= 31);
    let mut x = *cell;

    // --- Skilling's AxestoTranspose ---
    let m = 1u32 << (bits - 1);
    // Inverse undo of the Gray-code rotation.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    q = m;
    while q > 1 {
        if x[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }

    // x now holds the "transposed" index; interleave into a scalar with
    // x[0] contributing the most significant bit of each group.
    let mut key = 0u128;
    for b in (0..bits).rev() {
        for &xi in x.iter() {
            key = (key << 1) | u128::from((xi >> b) & 1);
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_order_2d_matches_hand_interleave() {
        // cell (x=0b10, y=0b01) with 2 bits: key bits are x1 y1 x0 y0 =
        // 1 0 0 1 = 9.
        assert_eq!(z_order(&[0b10u32, 0b01u32], 2), 0b1001);
    }

    #[test]
    fn z_order_is_injective_on_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                assert!(seen.insert(z_order(&[x, y], 4)));
            }
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn hilbert_is_a_bijection_on_small_grids() {
        // 2-D, 4 bits: all 256 cells map to distinct keys covering 0..256.
        let mut keys = vec![];
        for x in 0..16u32 {
            for y in 0..16u32 {
                keys.push(hilbert(&[x, y], 4));
            }
        }
        keys.sort_unstable();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(*k, i as u128);
        }
    }

    #[test]
    fn hilbert_is_a_bijection_in_3d() {
        let mut keys = vec![];
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    keys.push(hilbert(&[x, y, z], 3));
                }
            }
        }
        keys.sort_unstable();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(*k, i as u128);
        }
    }

    #[test]
    fn hilbert_consecutive_positions_are_adjacent_cells() {
        // Invert by brute force on a 16x16 grid and check the walk is a
        // sequence of unit steps — the defining property of the curve.
        let mut by_key = vec![[0u32; 2]; 256];
        for x in 0..16u32 {
            for y in 0..16u32 {
                by_key[hilbert(&[x, y], 4) as usize] = [x, y];
            }
        }
        for w in by_key.windows(2) {
            let dx = w[0][0].abs_diff(w[1][0]);
            let dy = w[0][1].abs_diff(w[1][1]);
            assert_eq!(dx + dy, 1, "non-adjacent step {:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn grid_mapper_quantizes_and_clamps() {
        let bounds = Mbr::new([0.0, 0.0], [10.0, 10.0]);
        let g = GridMapper::new(bounds);
        let cells = 1u64 << g.bits();
        assert_eq!(g.cell(&Point::new([0.0, 0.0])), [0, 0]);
        let top = g.cell(&Point::new([10.0, 10.0]));
        assert_eq!(top, [(cells - 1) as u32, (cells - 1) as u32]);
        // Out-of-bounds points clamp instead of wrapping.
        assert_eq!(g.cell(&Point::new([-5.0, 20.0])), [0, (cells - 1) as u32]);
    }

    #[test]
    fn grid_mapper_handles_degenerate_extent() {
        // All points share x = 3: extent 0 must not divide by zero.
        let bounds = Mbr::new([3.0, 0.0], [3.0, 10.0]);
        let g = GridMapper::new(bounds);
        let c = g.cell(&Point::new([3.0, 5.0]));
        assert_eq!(c[0], 0);
    }

    #[test]
    fn hilbert_at_full_bits_spans_the_whole_key_range() {
        // 21 bits per dimension is the mapper's full 2-D resolution
        // (42-bit keys). The curve starts at the origin, every key stays
        // inside [0, 2^42), and the grid corners map to distinct keys.
        let bits = 21;
        let max = (1u32 << bits) - 1;
        assert_eq!(hilbert(&[0u32, 0u32], bits), 0);
        assert_eq!(z_order(&[max, max], bits), (1u128 << (2 * bits)) - 1);
        let corners = [[0, 0], [max, 0], [0, max], [max, max]];
        let mut keys: Vec<u128> = corners.iter().map(|c| hilbert(c, bits)).collect();
        for &k in &keys {
            assert!(k < 1u128 << (2 * bits));
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4, "corner cells collide");
        // Unit-step walks along opposite grid edges keep keys distinct —
        // injectivity exercised at full resolution, far from the origin.
        let mut seen = std::collections::HashSet::new();
        for step in 0..1000u32 {
            assert!(seen.insert(hilbert(&[max - step, max], bits)));
            assert!(seen.insert(hilbert(&[0, step], bits)));
        }
    }

    #[test]
    fn hilbert_at_full_bits_in_3d() {
        // 3-D also caps at 21 bits per dimension (63-bit keys).
        let bits = super::bits_for::<3>();
        assert_eq!(bits, 21);
        let max = (1u32 << bits) - 1;
        assert_eq!(hilbert(&[0u32, 0, 0], bits), 0);
        let mut keys: Vec<u128> = [[max, 0, 0], [0, max, 0], [0, 0, max], [max, max, max]]
            .iter()
            .map(|c| hilbert(c, bits))
            .collect();
        for &k in &keys {
            assert!(k < 1u128 << (3 * bits));
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn grid_mapper_survives_extreme_extents_at_full_bits() {
        // A box spanning ~1e154 in every direction: the scale factor is
        // tiny but finite, and the corners still land on the grid corners.
        let g = GridMapper::new(Mbr::new([-1e154, -1e154], [1e154, 1e154]));
        assert_eq!(g.bits(), 21);
        let max = (1u64 << g.bits()) as u32 - 1;
        assert_eq!(g.cell(&Point::new([-1e154, -1e154])), [0, 0]);
        assert_eq!(g.cell(&Point::new([1e154, 1e154])), [max, max]);
        assert_eq!(g.hilbert_key(&Point::new([-1e154, -1e154])), 0);
        assert!(g.hilbert_key(&Point::new([1e154, 1e154])) < 1u128 << 42);

        // A box of near-denormal extent: the scale factor is ~2e306, so
        // the product overflows to ±infinity for far-away points and the
        // saturating float→int cast must clamp to the grid, not wrap.
        let g = GridMapper::new(Mbr::new([0.0, 0.0], [1e-300, 1e-300]));
        assert_eq!(g.cell(&Point::new([0.0, 0.0])), [0, 0]);
        assert_eq!(g.cell(&Point::new([1e-300, 1e-300])), [max, max]);
        assert_eq!(g.cell(&Point::new([1.0, -1.0])), [max, 0]);

        // Wildly asymmetric extents quantize each dimension independently.
        let g = GridMapper::new(Mbr::new([0.0, 0.0], [1e300, 1e-12]));
        let c = g.cell(&Point::new([5e299, 0.75e-12]));
        assert!(c[0].abs_diff(1 << 20) <= 1, "mid-extent cell: {}", c[0]);
        assert!(c[1].abs_diff(3 << 19) <= 1, "3/4-extent cell: {}", c[1]);
    }

    #[test]
    fn keys_sort_nearby_points_together() {
        // Points in the same quadrant should be contiguous under both curves
        // relative to a far-away point.
        let bounds = Mbr::new([0.0, 0.0], [1.0, 1.0]);
        let g = GridMapper::new(bounds);
        let a = Point::new([0.1, 0.1]);
        let b = Point::new([0.12, 0.11]);
        let far = Point::new([0.9, 0.95]);
        for key in [
            GridMapper::z_key as fn(&GridMapper<2>, &Point<2>) -> u128,
            GridMapper::hilbert_key,
        ] {
            let (ka, kb, kf) = (key(&g, &a), key(&g, &b), key(&g, &far));
            assert!(ka.abs_diff(kb) < ka.abs_diff(kf));
            assert!(kb.abs_diff(kf) > ka.abs_diff(kb));
        }
    }
}
