//! **NXNDIST** (`MINMAXMINDIST`) — the paper's new pruning metric (§3.1).
//!
//! `NXNDIST(M, N)` is the smallest value `v` such that *every* point `r`
//! covered by `M` is guaranteed to have a nearest neighbor among the points
//! bounded by `N` within distance `v` — provided `N` is a *minimum* bounding
//! rectangle (every face of `N` touches at least one point).
//!
//! Geometrically (paper Figure 1): pick a dimension `i`; sweeping a
//! `(D-1)`-dimensional slab of half-extent `MAXDIST_d(M,N)` in every
//! dimension `d != i` across `MAXMIN_i(M,N)` in dimension `i` is guaranteed
//! to engulf a whole face of `N` — and faces of minimum bounding rectangles
//! are never empty. `NXNDIST` is the shortest such search-region diagonal
//! over the `D` choices of sweep dimension:
//!
//! ```text
//! NXNDIST(M,N)² = min over i of ( Σ_{d≠i} MAXDIST_d² + MAXMIN_i² )
//!               = S − max over i of ( MAXDIST_i² − MAXMIN_i² ),
//!                 where S = Σ_d MAXDIST_d²
//! ```
//!
//! [`nxn_dist_sq`] implements the paper's Algorithm 1: one pass accumulates
//! `S`, a second pass evaluates the `D` candidates — `O(D)` total, which
//! matters because this metric is evaluated for every (owner, entry) pair
//! the ANN traversal considers.

use crate::Mbr;

/// `MAXDIST_d(M, N)`: the maximum distance in dimension `d` between any
/// point within `m` and any point within `n`.
///
/// Evaluated exactly as in Algorithm 1 line 4, as the maximum over the four
/// endpoint pairings.
#[inline]
pub fn max_dist_d<const D: usize>(m: &Mbr<D>, n: &Mbr<D>, d: usize) -> f64 {
    // The four endpoint pairings of Algorithm 1 line 4 reduce to two for
    // valid intervals: the maximum separation is always between opposite
    // extremes, max(u^M - l^N, u^N - l^M), and at least one of the two is
    // non-negative.
    (m.hi[d] - n.lo[d]).max(n.hi[d] - m.lo[d])
}

/// `MAXMIN_d(M, N)` (paper Definition 3.1): the maximum, over all points
/// `p ∈ M`, of the distance from `p_d` to the *nearer* of `N`'s two
/// endpoints in dimension `d`:
///
/// ```text
/// MAXMIN_d(M, N) = max_{p ∈ M} min(|p_d − l_d^N|, |p_d − u_d^N|)
/// ```
///
/// The function `f(p) = min(|p − l|, |p − u|)` is piecewise linear with its
/// interior maximum at the midpoint of `[l, u]`, so the maximum over the
/// interval `[l^M, u^M]` is attained at one of the interval's endpoints or
/// at that midpoint — a constant-time evaluation (the `MAXMIN` procedure of
/// Algorithm 1).
#[inline]
pub fn max_min_d<const D: usize>(m: &Mbr<D>, n: &Mbr<D>, d: usize) -> f64 {
    let (lm, um) = (m.lo[d], m.hi[d]);
    let (ln, un) = (n.lo[d], n.hi[d]);
    let f = |p: f64| (p - ln).abs().min((p - un).abs());
    let mut best = f(lm).max(f(um));
    let mid = 0.5 * (ln + un);
    if lm <= mid && mid <= um {
        best = best.max(f(mid));
    }
    best
}

/// Squared `NXNDIST(M, N)` via the paper's `O(D)` Algorithm 1.
///
/// `m` is the query-side MBR (from index `I_R`), `n` the target-side MBR
/// (from index `I_S`). The metric is **not** symmetric; see the paper's
/// remark after Lemma 3.3 and the `not_commutative` test below.
#[inline]
pub fn nxn_dist_sq<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    // First pass (Algorithm 1 lines 3-5): accumulate S = Σ MAXDIST_d².
    let mut max_dist_sq = [0.0f64; D];
    let mut s = 0.0;
    for d in 0..D {
        let md = max_dist_d(m, n, d);
        max_dist_sq[d] = md * md;
        s += max_dist_sq[d];
    }
    // Second pass (lines 6-9): try replacing each dimension's MAXDIST² with
    // its MAXMIN² and keep the minimum.
    let mut min_s = s;
    for d in 0..D {
        let mm = max_min_d(m, n, d);
        min_s = min_s.min(s - max_dist_sq[d] + mm * mm);
    }
    // `s - MAXDIST_d² + MAXMIN_d²` cancels catastrophically when the two
    // terms are large and nearly equal (touching or point-degenerate MBRs
    // at large coordinates): the computed value can dip below the true
    // MINMINDIST ≤ NXNDIST floor — or below zero — by an absolute error of
    // ~ulp(MAXDIST²). Clamping restores MINMINDIST ≤ NXNDIST exactly,
    // which downstream pruning comparisons rely on.
    min_s.max(crate::dist::min_min_dist_sq(m, n))
}

/// `NXNDIST(M, N)` — see [`nxn_dist_sq`].
#[inline]
pub fn nxn_dist<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
    nxn_dist_sq(m, n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_max_dist_sq, min_min_dist_sq, Point};

    #[test]
    fn max_min_d_interval_cases() {
        // M = [0,10], N = [4,6] in a 1-D slice of a 2-D MBR.
        let m = Mbr::new([0.0, 0.0], [10.0, 0.0]);
        let n = Mbr::new([4.0, 0.0], [6.0, 0.0]);
        // Worst point is p = 0: nearer endpoint of N is 4 at distance 4.
        assert_eq!(max_min_d(&m, &n, 0), 4.0);
        // Degenerate dimension: both intervals are {0}.
        assert_eq!(max_min_d(&m, &n, 1), 0.0);
    }

    #[test]
    fn max_min_d_interior_midpoint_dominates() {
        // M = [4.9, 5.1] sits astride the midpoint (5.0) of N = [0, 10]:
        // the midpoint itself is the worst point, at distance 5 - 0.1 ≈ f(5)?
        // f(4.9) = min(4.9, 5.1) = 4.9; f(5.1) = 4.9; f(5.0) = 5.0.
        let m = Mbr::new([4.9], [5.1]);
        let n = Mbr::new([0.0], [10.0]);
        assert_eq!(max_min_d(&m, &n, 0), 5.0);
    }

    #[test]
    fn max_dist_d_cases() {
        let m = Mbr::new([0.0], [10.0]);
        let n = Mbr::new([4.0], [6.0]);
        assert_eq!(max_dist_d(&m, &n, 0), 6.0); // |0 - 6|
        let far = Mbr::new([20.0], [25.0]);
        assert_eq!(max_dist_d(&m, &far, 0), 25.0); // |0 - 25|
    }

    /// The Figure 1(a) construction, hand-checked: M and N diagonal from
    /// each other, both sweep regions computed explicitly.
    #[test]
    fn two_d_example_matches_sweep_construction() {
        let m = Mbr::new([0.0, 4.0], [3.0, 7.0]);
        let n = Mbr::new([5.0, 0.0], [9.0, 2.0]);
        let mdx = max_dist_d(&m, &n, 0); // max(|0-9|,|0-5|,|3-9|,|3-5|) = 9
        let mdy = max_dist_d(&m, &n, 1); // max(|4-2|,|4-0|,|7-2|,|7-0|) = 7
        assert_eq!((mdx, mdy), (9.0, 7.0));
        let mmx = max_min_d(&m, &n, 0); // f(0)=5, f(3)=2, mid=7∉[0,3] → 5
        let mmy = max_min_d(&m, &n, 1); // f(4)=2, f(7)=5, mid=1∉[4,7] → 5
        assert_eq!((mmx, mmy), (5.0, 5.0));
        // Region α (sweep along x): diag² = MAXMIN_x² + MAXDIST_y² = 25+49.
        // Region β (sweep along y): diag² = MAXDIST_x² + MAXMIN_y² = 81+25.
        assert_eq!(nxn_dist_sq(&m, &n), 74.0);
    }

    /// Lemma 3.3 / Figure 2(b): MINMINDIST between *children* is not always
    /// below NXNDIST between the parents. Coordinates reconstructed to
    /// reproduce the paper's exact values √74 and √89.
    #[test]
    fn fig2b_counterexample() {
        let m_parent = Mbr::new([0.0, 5.0], [4.0, 7.0]);
        let n_parent = Mbr::new([5.0, 0.0], [9.0, 2.0]);
        // NXNDIST(M, N) = √74:
        assert!((nxn_dist(&m_parent, &n_parent) - 74.0f64.sqrt()).abs() < 1e-12);

        // Children m ⊂ M and n ⊂ N at opposite extremes:
        let m_child = Mbr::from_point(&Point::new([0.0, 7.0]));
        let n_child = Mbr::from_point(&Point::new([8.0, 2.0]));
        assert!(m_parent.contains(&m_child));
        assert!(n_parent.contains(&n_child));
        // MINMINDIST(m, n) = √(8² + 5²) = √89 > √74.
        assert!((min_min_dist_sq(&m_child, &n_child) - 89.0).abs() < 1e-12);
        assert!(min_min_dist_sq(&m_child, &n_child) > nxn_dist_sq(&m_parent, &n_parent));
    }

    /// Figure 1(b): a 3-D instance, checked against a direct evaluation of
    /// Definition 3.2.
    #[test]
    fn three_d_example() {
        let m = Mbr::new([0.0, 0.0, 0.0], [2.0, 3.0, 1.0]);
        let n = Mbr::new([4.0, 5.0, 2.0], [7.0, 9.0, 6.0]);
        let mut s = 0.0;
        let mut md = [0.0; 3];
        let mut mm = [0.0; 3];
        for d in 0..3 {
            md[d] = max_dist_d(&m, &n, d);
            mm[d] = max_min_d(&m, &n, d);
            s += md[d] * md[d];
        }
        let expected = (0..3)
            .map(|d| s - md[d] * md[d] + mm[d] * mm[d])
            .fold(f64::INFINITY, f64::min);
        assert_eq!(nxn_dist_sq(&m, &n), expected);
    }

    #[test]
    fn nxn_dist_not_commutative() {
        // The paper notes NXNDIST(M, N) ≠ NXNDIST(N, M) in general.
        let m = Mbr::new([0.0, 0.0], [10.0, 1.0]);
        let n = Mbr::new([12.0, 0.0], [13.0, 0.5]);
        assert_ne!(nxn_dist_sq(&m, &n), nxn_dist_sq(&n, &m));
    }

    #[test]
    fn bounded_by_classical_metrics() {
        let m = Mbr::new([0.0, 5.0], [4.0, 7.0]);
        let n = Mbr::new([5.0, 0.0], [9.0, 2.0]);
        assert!(min_min_dist_sq(&m, &n) <= nxn_dist_sq(&m, &n));
        assert!(nxn_dist_sq(&m, &n) <= max_max_dist_sq(&m, &n));
    }

    #[test]
    fn identical_mbrs() {
        // For M == N the bound is the shorter "semi-diagonal" region; it
        // must still be positive for a non-degenerate box and zero for a
        // point.
        let m = Mbr::new([0.0, 0.0], [4.0, 4.0]);
        assert!(nxn_dist_sq(&m, &m) > 0.0);
        assert!(nxn_dist_sq(&m, &m) <= m.diagonal_sq());
        let p = Mbr::from_point(&Point::new([1.0, 1.0]));
        assert_eq!(nxn_dist_sq(&p, &p), 0.0);
    }

    #[test]
    fn point_owner_inside_target() {
        // r inside N: the NN can still be as far as the nearer face sweep.
        let r = Mbr::from_point(&Point::new([5.0, 5.0]));
        let n = Mbr::new([0.0, 0.0], [10.0, 10.0]);
        let v = nxn_dist_sq(&r, &n);
        // MAXDIST = 5 per dim (wait: max(|5-0|,|5-10|) = 5), MAXMIN = 5.
        // Candidates are all 25 + 25 = 50.
        assert_eq!(v, 50.0);
    }
}
