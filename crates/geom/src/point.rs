//! `D`-dimensional points.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `D`-dimensional Euclidean space.
///
/// The dimensionality is a compile-time constant so that the hot distance
/// loops are fully unrolled for the dimensionalities the paper evaluates
/// (2, 4, 6 and 10).
///
/// Coordinates are `f64`; the paper's datasets (star positions, forest-cover
/// attributes) are real-valued.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> Point<D> {
    /// The point at the origin.
    pub const ORIGIN: Self = Point([0.0; D]);

    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Returns the coordinate array.
    #[inline]
    pub const fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// This is the primitive used in all inner loops; compare squared
    /// distances and only take the root at API boundaries.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let diff = self.0[d] - other.0[d];
            acc += diff * diff;
        }
        acc
    }

    /// Euclidean distance to `other` (`DIST(p, q)` in the paper's notation).
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Distance to `other` in a single dimension `d`
    /// (`DIST_d(p, q)` in the paper's notation).
    #[inline]
    pub fn dist_d(&self, other: &Self, d: usize) -> f64 {
        (self.0[d] - other.0[d]).abs()
    }

    /// Returns `true` if every coordinate is finite (not NaN/inf).
    ///
    /// Index structures require finite coordinates; insertion APIs reject
    /// non-finite points up front rather than corrupting tree invariants.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Component-wise minimum with `other`.
    #[inline]
    pub fn component_min(&self, other: &Self) -> Self {
        let mut out = self.0;
        for d in 0..D {
            out[d] = out[d].min(other.0[d]);
        }
        Point(out)
    }

    /// Component-wise maximum with `other`.
    #[inline]
    pub fn component_max(&self, other: &Self) -> Self {
        let mut out = self.0;
        for d in 0..D {
            out[d] = out[d].max(other.0[d]);
        }
        Point(out)
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::ORIGIN
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, d: usize) -> &f64 {
        &self.0[d]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, d: usize) -> &mut f64 {
        &mut self.0[d]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_hand_computed() {
        let p = Point::new([0.0, 3.0]);
        let q = Point::new([4.0, 0.0]);
        assert_eq!(p.dist_sq(&q), 25.0);
        assert_eq!(p.dist(&q), 5.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let p = Point::new([1.5, -2.0, 7.25]);
        let q = Point::new([-3.0, 0.5, 2.0]);
        assert_eq!(p.dist_sq(&q), q.dist_sq(&p));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let p = Point::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p.dist_sq(&p), 0.0);
    }

    #[test]
    fn per_dimension_distance() {
        let p = Point::new([1.0, 10.0]);
        let q = Point::new([4.0, 2.0]);
        assert_eq!(p.dist_d(&q, 0), 3.0);
        assert_eq!(p.dist_d(&q, 1), 8.0);
    }

    #[test]
    fn component_min_max() {
        let p = Point::new([1.0, 5.0]);
        let q = Point::new([3.0, 2.0]);
        assert_eq!(p.component_min(&q), Point::new([1.0, 2.0]));
        assert_eq!(p.component_max(&q), Point::new([3.0, 5.0]));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new([0.0, 1.0]).is_finite());
        assert!(!Point::new([f64::NAN, 1.0]).is_finite());
        assert!(!Point::new([0.0, f64::INFINITY]).is_finite());
    }

    #[test]
    fn indexing() {
        let mut p = Point::new([1.0, 2.0]);
        assert_eq!(p[1], 2.0);
        p[0] = 9.0;
        assert_eq!(p, Point::new([9.0, 2.0]));
    }
}
