//! Geometric primitives and distance metrics for all-nearest-neighbor (ANN)
//! query evaluation.
//!
//! This crate implements the geometric substrate of Chen & Patel,
//! *"Efficient Evaluation of All-Nearest-Neighbor Queries"* (ICDE 2007):
//!
//! * [`Point`] — a `D`-dimensional point with Euclidean distance.
//! * [`Mbr`] — a minimum bounding rectangle represented, as in the paper, by
//!   a lower-bound vector and an upper-bound vector.
//! * The classical MBR distance metrics used by spatial join algorithms:
//!   [`min_min_dist`], [`min_max_dist`], [`max_max_dist`].
//! * The paper's new pruning metric **NXNDIST** ([`nxn_dist`]), computed with
//!   the `O(D)` two-pass procedure of the paper's Algorithm 1, together with
//!   its building blocks [`max_dist_d`] and [`max_min_d`].
//! * [`PruneMetric`] — a zero-sized strategy type that lets every ANN
//!   algorithm in the workspace run with either NXNDIST or the traditional
//!   MAXMAXDIST upper bound (the switch that produces the paper's Figure 3a).
//! * Space-filling curves ([`curve::z_order`], [`curve::hilbert`]) used for
//!   bulk loading and for grouping points in the BNN baseline.
//! * Batched SoA kernels ([`kernels`]) — the same metrics evaluated over
//!   column-major candidate sets, unrolled across candidates so every
//!   result is bit-identical to the scalar path.
//!
//! All metrics come in squared form (`*_sq`) as the primary primitive;
//! square roots are taken only at API boundaries, because ANN inner loops
//! compare distances and never need the root.
//!
//! # Example
//!
//! ```
//! use ann_geom::{Mbr, Point, min_min_dist, nxn_dist, max_max_dist};
//!
//! let m = Mbr::new([0.0, 5.0], [4.0, 7.0]);
//! let n = Mbr::new([5.0, 0.0], [9.0, 2.0]);
//!
//! // NXNDIST is a *much* tighter upper bound than MAXMAXDIST:
//! assert!(nxn_dist(&m, &n) <= max_max_dist(&m, &n));
//! // ...while still upper-bounding the true nearest-neighbor distance for
//! // every point of `m` (Lemma 3.1 in the paper):
//! assert!(min_min_dist(&m, &n) <= nxn_dist(&m, &n));
//! ```

// Indexing `0..D` across several same-shaped arrays is the clearest
// way to write fixed-dimensional numeric kernels; iterator zips obscure it.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod curve;
mod dist;
pub mod kernels;
mod mbr;
mod metric;
mod nxndist;
mod point;

pub use dist::{
    max_max_dist, max_max_dist_sq, min_max_dist, min_max_dist_sq, min_min_dist, min_min_dist_sq,
    min_min_dist_sq_within,
};
pub use kernels::{SoaMbrs, SoaPoints};
pub use mbr::Mbr;
pub use metric::{MaxMaxDist, NxnDist, PruneMetric};
pub use nxndist::{max_dist_d, max_min_d, nxn_dist, nxn_dist_sq};
pub use point::Point;
