//! Pluggable pruning upper-bound metrics.
//!
//! Every ANN algorithm in this workspace is generic over the upper-bound
//! metric it prunes with. Instantiating the same algorithm with
//! [`MaxMaxDist`] versus [`NxnDist`] is exactly the experiment of the
//! paper's Figure 3(a) ("BNN MAXMAXDIST" vs "BNN NXNDIST", etc.).

use crate::kernels::{self, SoaMbrs};
use crate::{max_max_dist_sq, nxn_dist_sq, Mbr};

/// An upper-bound metric `PM(M, N)` usable for ANN pruning: it must
/// guarantee that every point bounded by `m` has a nearest neighbor among
/// the points bounded by `n` within `PM(m, n)` (assuming `n` is a minimum
/// bounding rectangle of its point set).
///
/// Implementations are zero-sized strategy types so the metric choice
/// monomorphizes into the traversal's inner loops at zero runtime cost.
pub trait PruneMetric: Copy + Default + Send + Sync + 'static {
    /// Human-readable name used in benchmark output
    /// (`"NXNDIST"` / `"MAXMAXDIST"`).
    const NAME: &'static str;

    /// Squared upper bound between the query-side MBR `m` and the
    /// target-side MBR `n`.
    fn upper_sq<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64;

    /// Batched [`PruneMetric::upper_sq`] over a column-major candidate set:
    /// `out[i]` gets exactly the bits `upper_sq(m, &n.mbr(i))` would
    /// produce. The default implementation is the scalar loop; metrics with
    /// a dedicated kernel override it.
    fn upper_sq_batch<const D: usize>(m: &Mbr<D>, n: &SoaMbrs<'_>, out: &mut Vec<f64>) {
        out.clear();
        out.resize(n.len, 0.0);
        for i in 0..n.len {
            out[i] = Self::upper_sq(m, &n.mbr::<D>(i));
        }
    }
}

/// The paper's new `NXNDIST` metric (§3.1) — the tight upper bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NxnDist;

impl PruneMetric for NxnDist {
    const NAME: &'static str = "NXNDIST";

    #[inline]
    fn upper_sq<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
        nxn_dist_sq(m, n)
    }

    #[inline]
    fn upper_sq_batch<const D: usize>(m: &Mbr<D>, n: &SoaMbrs<'_>, out: &mut Vec<f64>) {
        kernels::nxn_dist_sq_batch(m, n, out);
    }
}

/// The traditional `MAXMAXDIST` metric used by prior ANN work — a valid but
/// overly conservative upper bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxMaxDist;

impl PruneMetric for MaxMaxDist {
    const NAME: &'static str = "MAXMAXDIST";

    #[inline]
    fn upper_sq<const D: usize>(m: &Mbr<D>, n: &Mbr<D>) -> f64 {
        max_max_dist_sq(m, n)
    }

    #[inline]
    fn upper_sq_batch<const D: usize>(m: &Mbr<D>, n: &SoaMbrs<'_>, out: &mut Vec<f64>) {
        kernels::max_max_dist_sq_batch(m, n, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nxn_never_looser_than_maxmax() {
        let m = Mbr::new([0.0, 5.0], [4.0, 7.0]);
        let n = Mbr::new([5.0, 0.0], [9.0, 2.0]);
        assert!(NxnDist::upper_sq(&m, &n) <= MaxMaxDist::upper_sq(&m, &n));
    }

    #[test]
    fn names() {
        assert_eq!(NxnDist::NAME, "NXNDIST");
        assert_eq!(MaxMaxDist::NAME, "MAXMAXDIST");
    }
}
