//! Minimum bounding rectangles.

use crate::Point;
use std::fmt;

/// A `D`-dimensional minimum bounding rectangle (MBR).
///
/// Represented exactly as in the paper (§3.1.1): a lower-bound vector
/// `lo = <l_1, ..., l_D>` and an upper-bound vector `hi = <u_1, ..., u_D>`
/// with `lo[d] <= hi[d]` for every dimension.
///
/// A single point is a degenerate MBR with `lo == hi`; all metric functions
/// accept degenerate MBRs, which is how the ANN algorithms treat data
/// objects uniformly with index nodes.
#[derive(Clone, Copy, PartialEq)]
pub struct Mbr<const D: usize> {
    /// Lower bound in each dimension.
    pub lo: [f64; D],
    /// Upper bound in each dimension.
    pub hi: [f64; D],
}

impl<const D: usize> Mbr<D> {
    /// Creates an MBR from explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `lo[d] > hi[d]` for some dimension.
    #[inline]
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        debug_assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "invalid MBR: lo {lo:?} exceeds hi {hi:?}"
        );
        Mbr { lo, hi }
    }

    /// The degenerate MBR covering a single point.
    #[inline]
    pub fn from_point(p: &Point<D>) -> Self {
        Mbr { lo: p.0, hi: p.0 }
    }

    /// An "empty" placeholder rectangle that behaves as the identity under
    /// [`Mbr::union`] and contains nothing.
    #[inline]
    pub fn empty() -> Self {
        Mbr {
            lo: [f64::INFINITY; D],
            hi: [f64::NEG_INFINITY; D],
        }
    }

    /// Returns `true` if this is the [`Mbr::empty`] placeholder.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|d| self.lo[d] > self.hi[d])
    }

    /// The tightest MBR enclosing a set of points. Returns [`Mbr::empty`]
    /// for an empty iterator.
    pub fn from_points<'a, I>(points: I) -> Self
    where
        I: IntoIterator<Item = &'a Point<D>>,
    {
        let mut out = Self::empty();
        for p in points {
            out.expand_point(p);
        }
        out
    }

    /// Grows this MBR (in place) to include `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point<D>) {
        for d in 0..D {
            self.lo[d] = self.lo[d].min(p.0[d]);
            self.hi[d] = self.hi[d].max(p.0[d]);
        }
    }

    /// Grows this MBR (in place) to include `other`.
    #[inline]
    pub fn expand(&mut self, other: &Self) {
        for d in 0..D {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// The tightest MBR enclosing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        out.expand(other);
        out
    }

    /// Returns `true` if `p` lies inside this MBR (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|d| self.lo[d] <= p.0[d] && p.0[d] <= self.hi[d])
    }

    /// Returns `true` if `other` lies entirely inside this MBR.
    #[inline]
    pub fn contains(&self, other: &Self) -> bool {
        (0..D).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Returns `true` if the two MBRs share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// Extent (`hi - lo`) in dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi[d] - self.lo[d]
    }

    /// The center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for d in 0..D {
            c[d] = 0.5 * (self.lo[d] + self.hi[d]);
        }
        Point(c)
    }

    /// `D`-dimensional volume (area in 2-D). Zero for degenerate MBRs.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|d| self.extent(d)).product()
    }

    /// Sum of the extents over all dimensions — the "margin" that the
    /// R*-tree split heuristic minimizes (half the surface perimeter in 2-D).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|d| self.extent(d)).sum()
    }

    /// Volume of the intersection with `other` (zero when disjoint).
    #[inline]
    pub fn intersection_volume(&self, other: &Self) -> f64 {
        let mut v = 1.0;
        for d in 0..D {
            let lo = self.lo[d].max(other.lo[d]);
            let hi = self.hi[d].min(other.hi[d]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Squared length of the diagonal.
    #[inline]
    pub fn diagonal_sq(&self) -> f64 {
        (0..D).map(|d| self.extent(d) * self.extent(d)).sum()
    }

    /// Returns `true` if `lo == hi`, i.e. the MBR is a single point.
    #[inline]
    pub fn is_point(&self) -> bool {
        (0..D).all(|d| self.lo[d] == self.hi[d])
    }
}

impl<const D: usize> fmt::Debug for Mbr<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mbr[{:?}..{:?}]", self.lo, self.hi)
    }
}

impl<const D: usize> From<Point<D>> for Mbr<D> {
    fn from(p: Point<D>) -> Self {
        Mbr::from_point(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_of_points_is_tight() {
        let pts = [
            Point::new([1.0, 4.0]),
            Point::new([3.0, 2.0]),
            Point::new([2.0, 9.0]),
        ];
        let m = Mbr::from_points(pts.iter());
        assert_eq!(m, Mbr::new([1.0, 2.0], [3.0, 9.0]));
    }

    #[test]
    fn empty_is_union_identity() {
        let m = Mbr::new([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(Mbr::empty().union(&m), m);
        assert!(Mbr::<2>::empty().is_empty());
        assert!(!m.is_empty());
    }

    #[test]
    fn from_points_empty_iterator() {
        let m = Mbr::<3>::from_points(std::iter::empty());
        assert!(m.is_empty());
        assert_eq!(m.volume(), 0.0);
    }

    #[test]
    fn containment_and_intersection() {
        let big = Mbr::new([0.0, 0.0], [10.0, 10.0]);
        let small = Mbr::new([2.0, 2.0], [4.0, 4.0]);
        let outside = Mbr::new([11.0, 0.0], [12.0, 1.0]);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&outside));
        assert!(big.contains_point(&Point::new([10.0, 10.0])));
        assert!(!big.contains_point(&Point::new([10.0, 10.1])));
    }

    #[test]
    fn touching_mbrs_intersect() {
        let a = Mbr::new([0.0, 0.0], [1.0, 1.0]);
        let b = Mbr::new([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_volume(&b), 0.0);
    }

    #[test]
    fn measures() {
        let m = Mbr::new([0.0, 0.0, 0.0], [2.0, 3.0, 4.0]);
        assert_eq!(m.volume(), 24.0);
        assert_eq!(m.margin(), 9.0);
        assert_eq!(m.diagonal_sq(), 4.0 + 9.0 + 16.0);
        assert_eq!(m.center(), Point::new([1.0, 1.5, 2.0]));
    }

    #[test]
    fn intersection_volume() {
        let a = Mbr::new([0.0, 0.0], [4.0, 4.0]);
        let b = Mbr::new([2.0, 1.0], [6.0, 3.0]);
        assert_eq!(a.intersection_volume(&b), 2.0 * 2.0);
        assert_eq!(b.intersection_volume(&a), 4.0);
        let c = Mbr::new([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(a.intersection_volume(&c), 0.0);
    }

    #[test]
    fn degenerate_point_mbr() {
        let p = Point::new([3.0, 7.0]);
        let m = Mbr::from_point(&p);
        assert!(m.is_point());
        assert!(m.contains_point(&p));
        assert_eq!(m.volume(), 0.0);
        assert_eq!(m.center(), p);
    }
}
