//! Property tests for the MBR metrics on degenerate and
//! cancellation-prone geometry, pinned to fixed seeds so the suite is a
//! permanent regression gate (originally surfaced by `crates/checker`).
//!
//! The contract under test, for any query MBR `M` and any MBR `N` built
//! from a point set `S`:
//!
//! * `NXNDIST(M, N)` is finite, non-negative, never NaN — including
//!   point-degenerate, touching, and coincident `M`/`N`;
//! * `MINMINDIST(M, N) ≤ NXNDIST(M, N) ≤ MAXMAXDIST(M, N)` **exactly**
//!   (same-accumulation-order floating point makes this assertable
//!   without epsilon);
//! * for every `r ∈ M`: `min_{s ∈ S} dist(r, s) ≤ NXNDIST(M, N)` — the
//!   defining ANN-pruning guarantee of the paper.

use ann_geom::{max_max_dist_sq, min_min_dist_sq, nxn_dist_sq, Mbr, Point};

/// Self-contained SplitMix64 so this crate keeps zero dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn lattice(&mut self) -> f64 {
        (self.next() % 9) as f64
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One random configuration at a given scale/offset; panics with a full
/// witness on any violated bound.
fn check_one<const D: usize>(rng: &mut Rng, scale: f64, offset: f64) {
    let n_s = 1 + (rng.next() % 8) as usize;
    let s: Vec<Point<D>> = (0..n_s)
        .map(|_| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.lattice() * scale + offset;
            }
            Point::new(c)
        })
        .collect();
    let n = Mbr::from_points(s.iter());

    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for d in 0..D {
        let a = rng.lattice() * scale + offset;
        // One third of dimensions degenerate to a point — that also
        // produces shared-face and fully coincident configurations.
        let b = if rng.next() % 3 == 0 {
            a
        } else {
            rng.lattice() * scale + offset
        };
        lo[d] = a.min(b);
        hi[d] = a.max(b);
    }
    let m = Mbr::new(lo, hi);

    let nxn = nxn_dist_sq(&m, &n);
    let minmin = min_min_dist_sq(&m, &n);
    let maxmax = max_max_dist_sq(&m, &n);
    let ctx = || format!("M={m:?} N={n:?} S={s:?} scale={scale} offset={offset}");
    assert!(nxn.is_finite() && nxn >= 0.0, "NXN² = {nxn:?}: {}", ctx());
    assert!(nxn >= minmin, "NXN² {nxn:?} < MINMIN² {minmin:?}: {}", ctx());
    assert!(nxn <= maxmax, "NXN² {nxn:?} > MAXMAX² {maxmax:?}: {}", ctx());

    // The defining property, sampled at corners and interior points.
    let mut queries = vec![Point::new(m.lo), Point::new(m.hi)];
    for _ in 0..4 {
        let mut c = [0.0; D];
        for d in 0..D {
            c[d] = m.lo[d] + rng.unit() * (m.hi[d] - m.lo[d]);
        }
        queries.push(Point::new(c));
    }
    for r in &queries {
        let nn = s
            .iter()
            .map(|p| r.dist_sq(p))
            .fold(f64::INFINITY, f64::min);
        assert!(
            nn <= nxn * (1.0 + 1e-9),
            "true NN² {nn:?} exceeds NXN² {nxn:?} at r={r:?}: {}",
            ctx()
        );
    }
}

#[test]
fn nxn_bounds_hold_on_lattice_configurations_2d() {
    let mut rng = Rng(0x5EED_0001);
    for _ in 0..500 {
        check_one::<2>(&mut rng, 1.0, 0.0);
    }
}

#[test]
fn nxn_bounds_hold_in_1d_and_8d() {
    let mut rng = Rng(0x5EED_0002);
    for _ in 0..300 {
        check_one::<1>(&mut rng, 1.0, 0.0);
        check_one::<8>(&mut rng, 1.0, 0.0);
    }
}

/// The cancellation regression: at offsets around `1e8` the NXNDIST
/// inner expression `Σ max² − max_d² + maxmin_d²` loses low bits and,
/// before the clamp, could dip a few ulps *below* MINMINDIST — breaking
/// the metric ordering downstream pruning relies on.
#[test]
fn nxn_stays_above_minmin_at_cancellation_offsets() {
    let mut rng = Rng(0x5EED_0003);
    for offset in [1.0e8, 1.0e12, 1.0e15] {
        for scale in [1.0, 1024.0, 0.0078125] {
            for _ in 0..150 {
                check_one::<2>(&mut rng, scale, offset);
                check_one::<8>(&mut rng, scale, offset);
            }
        }
    }
}

/// Hand-shrunk degenerate pairs: coincident point-MBRs, a point on the
/// face of a box, and disjoint intervals in 1-D.
#[test]
fn degenerate_mbr_pairs_are_exact() {
    // Coincident points: every metric is exactly zero.
    let p = Mbr::new([5.0, 5.0], [5.0, 5.0]);
    assert_eq!(nxn_dist_sq(&p, &p), 0.0);
    assert_eq!(min_min_dist_sq(&p, &p), 0.0);
    assert_eq!(max_max_dist_sq(&p, &p), 0.0);

    // A point on the face of a box: MINMIN = 0, NXN spans the box depth.
    let m = Mbr::new([0.0, 1.0], [0.0, 1.0]);
    let n = Mbr::new([0.0, 0.0], [2.0, 2.0]);
    let nxn = nxn_dist_sq(&m, &n);
    assert_eq!(min_min_dist_sq(&m, &n), 0.0);
    assert!(nxn >= 0.0 && nxn <= max_max_dist_sq(&m, &n));

    // Disjoint 1-D intervals: NXN = distance to the far end of the
    // nearer approach, bounded by the exact interval arithmetic.
    let a = Mbr::new([0.0], [1.0]);
    let b = Mbr::new([3.0], [4.0]);
    let nxn = nxn_dist_sq(&a, &b);
    assert_eq!(min_min_dist_sq(&a, &b), 4.0); // (3-1)²
    assert_eq!(max_max_dist_sq(&a, &b), 16.0); // (4-0)²
    assert!((4.0..=16.0).contains(&nxn));
}
