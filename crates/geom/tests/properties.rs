//! Property-based tests for the metric layer: these check the paper's
//! Lemmas 3.1-3.3 on randomized inputs rather than hand-picked examples.

use ann_geom::{
    max_dist_d, max_max_dist_sq, max_min_d, min_min_dist_sq, nxn_dist, nxn_dist_sq, Mbr, Point,
};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Strategy: a valid D-dimensional MBR with coordinates in [-100, 100].
fn mbr_strategy<const D: usize>() -> impl Strategy<Value = Mbr<D>> {
    (
        proptest::array::uniform(-100.0f64..100.0),
        proptest::array::uniform(0.0f64..50.0),
    )
        .prop_map(|(lo, ext): ([f64; D], [f64; D])| {
            let mut hi = lo;
            for d in 0..D {
                hi[d] += ext[d];
            }
            Mbr::new(lo, hi)
        })
}

/// Strategy: a point uniformly inside a given MBR, driven by D unit floats.
fn point_in<const D: usize>(m: &Mbr<D>, t: [f64; D]) -> Point<D> {
    let mut c = [0.0; D];
    for d in 0..D {
        c[d] = m.lo[d] + t[d] * (m.hi[d] - m.lo[d]);
    }
    Point::new(c)
}

/// Strategy: a small point set together with its exact MBR.
fn point_set_strategy<const D: usize>() -> impl Strategy<Value = Vec<Point<D>>> {
    proptest::collection::vec(proptest::array::uniform(-100.0f64..100.0), 1..20)
        .prop_map(|v| v.into_iter().map(Point::new).collect())
}

proptest! {
    /// Lemma 3.1: for any point set with MBR N and any r in M, the distance
    /// from r to its nearest neighbor in the set is at most NXNDIST(M, N).
    #[test]
    fn lemma_3_1_nxndist_upper_bounds_nn_distance(
        set in point_set_strategy::<3>(),
        m in mbr_strategy::<3>(),
        t in proptest::array::uniform3(0.0f64..=1.0),
    ) {
        let n = Mbr::from_points(set.iter());
        let r = point_in(&m, t);
        let nn_dist = set
            .iter()
            .map(|s| r.dist(s))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            nn_dist <= nxn_dist(&m, &n) + EPS,
            "NN dist {} exceeds NXNDIST {}",
            nn_dist,
            nxn_dist(&m, &n)
        );
    }

    /// Lemma 3.2: shrinking the query-side MBR never increases NXNDIST.
    #[test]
    fn lemma_3_2_monotone_in_query_side(
        m in mbr_strategy::<2>(),
        n in mbr_strategy::<2>(),
        t_lo in proptest::array::uniform2(0.0f64..=1.0),
        t_hi in proptest::array::uniform2(0.0f64..=1.0),
    ) {
        // Build a child MBR inside m.
        let a = point_in(&m, t_lo);
        let b = point_in(&m, t_hi);
        let child = Mbr::new(
            [a[0].min(b[0]), a[1].min(b[1])],
            [a[0].max(b[0]), a[1].max(b[1])],
        );
        prop_assert!(m.contains(&child));
        prop_assert!(nxn_dist_sq(&child, &n) <= nxn_dist_sq(&m, &n) + EPS);
    }

    /// NXNDIST always sits between MINMINDIST and MAXMAXDIST.
    #[test]
    fn nxndist_between_classical_bounds(
        m in mbr_strategy::<4>(),
        n in mbr_strategy::<4>(),
    ) {
        let nxn = nxn_dist_sq(&m, &n);
        prop_assert!(min_min_dist_sq(&m, &n) <= nxn + EPS);
        prop_assert!(nxn <= max_max_dist_sq(&m, &n) + EPS);
    }

    /// MINMINDIST / MAXMAXDIST really do bound every realized pair distance.
    #[test]
    fn pair_distances_bracketed(
        m in mbr_strategy::<3>(),
        n in mbr_strategy::<3>(),
        tp in proptest::array::uniform3(0.0f64..=1.0),
        tq in proptest::array::uniform3(0.0f64..=1.0),
    ) {
        let p = point_in(&m, tp);
        let q = point_in(&n, tq);
        let d2 = p.dist_sq(&q);
        prop_assert!(min_min_dist_sq(&m, &n) <= d2 + EPS);
        prop_assert!(d2 <= max_max_dist_sq(&m, &n) + EPS);
    }

    /// Algorithm 1 agrees with a direct evaluation of Definition 3.2.
    #[test]
    fn algorithm_1_matches_definition(
        m in mbr_strategy::<4>(),
        n in mbr_strategy::<4>(),
    ) {
        let mut s = 0.0;
        let mut best = f64::INFINITY;
        for d in 0..4 {
            let md = max_dist_d(&m, &n, d);
            s += md * md;
        }
        for d in 0..4 {
            let md = max_dist_d(&m, &n, d);
            let mm = max_min_d(&m, &n, d);
            best = best.min(s - md * md + mm * mm);
        }
        let alg = nxn_dist_sq(&m, &n);
        prop_assert!((alg - best).abs() <= EPS.max(best.abs() * 1e-12));
    }

    /// MAXMIN_d matches a dense 1-D sampling of Definition 3.1.
    #[test]
    fn max_min_d_matches_sampled_definition(
        m in mbr_strategy::<2>(),
        n in mbr_strategy::<2>(),
    ) {
        for dim in 0..2 {
            let analytic = max_min_d(&m, &n, dim);
            let mut sampled: f64 = 0.0;
            const STEPS: usize = 500;
            for i in 0..=STEPS {
                let p = m.lo[dim]
                    + (m.hi[dim] - m.lo[dim]) * (i as f64 / STEPS as f64);
                let f = (p - n.lo[dim]).abs().min((p - n.hi[dim]).abs());
                sampled = sampled.max(f);
            }
            // The sampled value can only underestimate the true maximum.
            prop_assert!(sampled <= analytic + EPS);
            // ...and must get close to it (f is 1-Lipschitz).
            let step = (m.hi[dim] - m.lo[dim]) / STEPS as f64;
            prop_assert!(analytic <= sampled + step + EPS);
        }
    }

    /// MAXDIST_d matches its definition on realized pairs.
    #[test]
    fn max_dist_d_bounds_pairs(
        m in mbr_strategy::<2>(),
        n in mbr_strategy::<2>(),
        tp in proptest::array::uniform2(0.0f64..=1.0),
        tq in proptest::array::uniform2(0.0f64..=1.0),
    ) {
        let p = point_in(&m, tp);
        let q = point_in(&n, tq);
        for d in 0..2 {
            prop_assert!(p.dist_d(&q, d) <= max_dist_d(&m, &n, d) + EPS);
        }
    }

    /// The degenerate-MBR route gives exact point-to-point distance for all
    /// metrics.
    #[test]
    fn all_metrics_collapse_for_points(
        a in proptest::array::uniform3(-100.0f64..100.0),
        b in proptest::array::uniform3(-100.0f64..100.0),
    ) {
        let p = Point::new(a);
        let q = Point::new(b);
        let pm = Mbr::from_point(&p);
        let qm = Mbr::from_point(&q);
        let d2 = p.dist_sq(&q);
        prop_assert!((min_min_dist_sq(&pm, &qm) - d2).abs() <= EPS.max(d2 * 1e-12));
        prop_assert!((max_max_dist_sq(&pm, &qm) - d2).abs() <= EPS.max(d2 * 1e-12));
        prop_assert!((nxn_dist_sq(&pm, &qm) - d2).abs() <= EPS.max(d2 * 1e-12));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hilbert keys of distinct cells are distinct (bijectivity spot check
    /// on random cell pairs at full 2-D resolution).
    #[test]
    fn hilbert_injective_on_random_cells(
        a in proptest::array::uniform2(0u32..(1 << 21)),
        b in proptest::array::uniform2(0u32..(1 << 21)),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(ann_geom::curve::hilbert(&a, 21), ann_geom::curve::hilbert(&b, 21));
    }

    /// Z-order keys of distinct cells are distinct.
    #[test]
    fn z_order_injective_on_random_cells(
        a in proptest::array::uniform3(0u32..(1 << 20)),
        b in proptest::array::uniform3(0u32..(1 << 20)),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(ann_geom::curve::z_order(&a, 20), ann_geom::curve::z_order(&b, 20));
    }
}
