//! End-to-end correctness of the GORDER join against brute force.

use ann_core::brute::brute_force_aknn;
use ann_core::stats::NeighborPair;
use ann_geom::Point;
use ann_gorder::{gorder_join, GorderConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), frames))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..100.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

fn check<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    cfg: &GorderConfig,
    label: &str,
) {
    let truth = {
        let mut t = brute_force_aknn(r, s, cfg.k, cfg.exclude_self);
        t.sort_by(|a, b| {
            (a.r_oid, a.dist, a.s_oid)
                .partial_cmp(&(b.r_oid, b.dist, b.s_oid))
                .unwrap()
        });
        t
    };
    let mut out = gorder_join(r, s, pool(128), cfg).unwrap();
    out.sort();
    assert_eq!(out.results.len(), truth.len(), "{label}: count");
    for (g, t) in out.results.iter().zip(&truth) {
        assert_eq!(g.r_oid, t.r_oid, "{label}: query order");
        assert!(
            (g.dist - t.dist).abs() <= 1e-9 * (1.0 + t.dist),
            "{label}: r#{} got {} want {}",
            g.r_oid,
            g.dist,
            t.dist
        );
    }
}

#[test]
fn matches_brute_force_2d() {
    let r = random_points::<2>(700, 11);
    let s = random_points::<2>(800, 22);
    check(&r, &s, &GorderConfig::default(), "2d k=1");
}

#[test]
fn matches_brute_force_k5() {
    let r = random_points::<2>(300, 33);
    let s = random_points::<2>(350, 44);
    let cfg = GorderConfig {
        k: 5,
        ..Default::default()
    };
    check(&r, &s, &cfg, "2d k=5");
}

#[test]
fn matches_brute_force_10d_correlated() {
    // The FC-like data is GORDER's best case (PCA concentrates variance).
    let r = ann_datagen::fc_like(400, 1);
    let s = ann_datagen::fc_like(450, 2);
    check(&r, &s, &GorderConfig::default(), "10d");
}

#[test]
fn self_join_with_exclusion() {
    let pts = random_points::<2>(400, 55);
    let cfg = GorderConfig {
        k: 2,
        exclude_self: true,
        ..Default::default()
    };
    check(&pts, &pts, &cfg, "self-join");
}

#[test]
fn block_sizes_do_not_change_results() {
    let r = random_points::<3>(300, 66);
    let s = random_points::<3>(300, 77);
    let reference: Vec<NeighborPair> = {
        let mut out = gorder_join(&r, &s, pool(128), &GorderConfig::default()).unwrap();
        out.sort();
        out.results
    };
    for (rp, sp) in [(1usize, 1usize), (2, 8), (16, 4)] {
        let cfg = GorderConfig {
            r_block_pages: rp,
            s_block_pages: sp,
            ..Default::default()
        };
        let mut out = gorder_join(&r, &s, pool(128), &cfg).unwrap();
        out.sort();
        assert_eq!(out.results.len(), reference.len());
        for (a, b) in out.results.iter().zip(&reference) {
            assert_eq!(a.r_oid, b.r_oid);
            assert!((a.dist - b.dist).abs() < 1e-9);
        }
    }
}

#[test]
fn grid_granularity_does_not_change_results() {
    let r = random_points::<2>(300, 88);
    let s = random_points::<2>(300, 99);
    for segments in [2, 16, 256] {
        let cfg = GorderConfig {
            segments_per_dim: segments,
            ..Default::default()
        };
        check(&r, &s, &cfg, &format!("segments={segments}"));
    }
}

#[test]
fn empty_inputs() {
    let pts = random_points::<2>(50, 1);
    let out = gorder_join::<2>(&[], &pts, pool(16), &GorderConfig::default()).unwrap();
    assert!(out.results.is_empty());
    let out = gorder_join::<2>(&pts, &[], pool(16), &GorderConfig::default()).unwrap();
    assert!(out.results.is_empty());
}

#[test]
fn schedule_prunes_far_blocks() {
    // Two well separated clusters: the join of the left cluster must not
    // scan every block of the right cluster.
    let mut rng = StdRng::seed_from_u64(7);
    let mut pts: Vec<(u64, Point<2>)> = vec![];
    for i in 0..2000u64 {
        let base = if i % 2 == 0 { 0.0 } else { 1000.0 };
        pts.push((
            i,
            Point::new([base + rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]),
        ));
    }
    let p = pool(256);
    // One-page blocks so each cluster spans several blocks (a 2-D record
    // is 24 bytes, ~340 per page).
    let cfg = GorderConfig {
        r_block_pages: 1,
        s_block_pages: 1,
        ..Default::default()
    };
    let out = gorder_join(&pts, &pts, p, &cfg).unwrap();
    assert_eq!(out.results.len(), 2000);
    // Within-cluster work is inherently ~2 * 1000^2 = 2M pair distances;
    // the scheduled block pruning must eliminate essentially all of the
    // ~2M cross-cluster pairs.
    assert!(
        out.stats.distance_computations < 2_500_000,
        "block pruning failed: {} computations",
        out.stats.distance_computations
    );
}

#[test]
fn variance_weighted_grid_is_exact_and_no_worse_on_correlated_data() {
    // FC-like data concentrates variance in the leading components; the
    // weighted grid must stay exact and should not do more work than the
    // uniform one.
    let r = ann_datagen::fc_like(1500, 21);
    let s = ann_datagen::fc_like(1500, 22);
    let weighted = GorderConfig {
        variance_weighted_grid: true,
        ..Default::default()
    };
    check(&r, &s, &weighted, "weighted grid");
    let uniform = GorderConfig {
        variance_weighted_grid: false,
        ..Default::default()
    };
    let w = gorder_join(&r, &s, pool(128), &weighted).unwrap();
    let u = gorder_join(&r, &s, pool(128), &uniform).unwrap();
    assert!(
        w.stats.distance_computations <= u.stats.distance_computations * 11 / 10,
        "weighted {} vs uniform {}",
        w.stats.distance_computations,
        u.stats.distance_computations
    );
}

#[test]
fn io_is_charged() {
    let r = random_points::<2>(2000, 111);
    let s = random_points::<2>(2000, 222);
    let p = pool(8); // tiny pool forces physical I/O
    let out = gorder_join(&r, &s, p, &GorderConfig::default()).unwrap();
    assert!(out.stats.io.logical_reads > 0);
    assert!(out.stats.io.physical_reads > 0);
    assert!(
        out.stats.io.physical_writes > 0,
        "sorted blocks are written"
    );
}
