//! **GORDER** (Xia, Lu, Ooi, Hu — VLDB 2004): the strongest non-indexed
//! kNN-join baseline the paper compares against.
//!
//! GORDER evaluates the kNN join in three phases:
//!
//! 1. **PCA transform** ([`pca`]): both datasets are rotated into the
//!    principal-component space of their union, concentrating variance in
//!    the leading dimensions (on correlated data like Forest Cover this is
//!    where most of the distance signal ends up).
//! 2. **Grid-order sort** ([`grid`]): a grid is superimposed on the
//!    transformed space and points are sorted lexicographically by cell
//!    coordinate ("G-order"), then written back to disk in sorted blocks.
//! 3. **Scheduled block nested-loops join** ([`join`]): outer blocks of
//!    `R` join against inner blocks of `S`, visiting inner blocks in
//!    ascending `MINMINDIST`-to-outer-block order and stopping as soon as
//!    that distance exceeds the block's pruning bound; within surviving
//!    block pairs, per-point bounds prune object tests.
//!
//! All block I/O goes through the shared [`ann_store::BufferPool`], so
//! GORDER runs are charged I/O on exactly the same terms as the
//! index-based algorithms.

// Indexing `0..D` across several same-shaped arrays is the clearest
// way to write fixed-dimensional numeric kernels; iterator zips obscure it.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod grid;
pub mod join;
pub mod pca;

pub use join::{gorder_join, gorder_join_traced, GorderConfig};
