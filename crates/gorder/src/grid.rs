//! Grid-order ("G-order") sorting of PCA-transformed points.
//!
//! GORDER superimposes a grid on the principal-component space and orders
//! points lexicographically by their cell coordinate vector. Because the
//! leading principal components carry the most variance, the lexicographic
//! order groups points that are close in the dimensions that matter most —
//! that is what makes sequential blocks of the sorted file spatially
//! coherent.

use ann_geom::{Mbr, Point};

/// The superimposed grid: per-dimension segment counts over fixed bounds.
#[derive(Clone, Debug)]
pub struct GridOrder<const D: usize> {
    bounds: Mbr<D>,
    segments: [u32; D],
}

impl<const D: usize> GridOrder<D> {
    /// Creates a grid over `bounds` with `segments` cells per dimension.
    /// GORDER recommends granting the leading principal components more
    /// segments; [`GridOrder::with_uniform_segments`] is the simple variant.
    pub fn new(bounds: Mbr<D>, segments: [u32; D]) -> Self {
        assert!(
            segments.iter().all(|&s| s >= 1),
            "every dimension needs at least one segment"
        );
        GridOrder { bounds, segments }
    }

    /// A grid with the same number of segments in every dimension.
    pub fn with_uniform_segments(bounds: Mbr<D>, segments: u32) -> Self {
        Self::new(bounds, [segments.max(1); D])
    }

    /// The grid cell of `p` (out-of-bounds points clamp).
    pub fn cell(&self, p: &Point<D>) -> [u32; D] {
        let mut out = [0u32; D];
        for d in 0..D {
            let ext = self.bounds.hi[d] - self.bounds.lo[d];
            let segs = self.segments[d];
            if ext <= 0.0 {
                continue;
            }
            let t = (p[d] - self.bounds.lo[d]) / ext;
            out[d] = ((t * segs as f64) as i64).clamp(0, (segs - 1) as i64) as u32;
        }
        out
    }

    /// Sorts `(oid, point)` records into G-order (lexicographic cell
    /// coordinates; dimension 0 — the leading principal component — is the
    /// most significant).
    pub fn sort<T: Copy>(&self, records: &mut [(T, Point<D>)]) {
        records.sort_by_key(|(_, p)| self.cell(p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_bounds() -> Mbr<2> {
        Mbr::new([0.0, 0.0], [1.0, 1.0])
    }

    #[test]
    fn cell_assignment() {
        let g = GridOrder::with_uniform_segments(unit_bounds(), 4);
        assert_eq!(g.cell(&Point::new([0.0, 0.0])), [0, 0]);
        assert_eq!(g.cell(&Point::new([0.26, 0.74])), [1, 2]);
        assert_eq!(g.cell(&Point::new([1.0, 1.0])), [3, 3]);
        // Clamping.
        assert_eq!(g.cell(&Point::new([-1.0, 2.0])), [0, 3]);
    }

    #[test]
    fn sort_is_lexicographic_by_cell() {
        let g = GridOrder::with_uniform_segments(unit_bounds(), 2);
        let mut recs = vec![
            (0u64, Point::new([0.9, 0.1])), // cell [1,0]
            (1u64, Point::new([0.1, 0.9])), // cell [0,1]
            (2u64, Point::new([0.1, 0.1])), // cell [0,0]
            (3u64, Point::new([0.9, 0.9])), // cell [1,1]
        ];
        g.sort(&mut recs);
        let order: Vec<u64> = recs.iter().map(|(o, _)| *o).collect();
        assert_eq!(order, vec![2, 1, 0, 3]);
    }

    #[test]
    fn degenerate_extent_is_stable() {
        let g = GridOrder::with_uniform_segments(Mbr::new([5.0, 0.0], [5.0, 1.0]), 8);
        assert_eq!(g.cell(&Point::new([5.0, 0.5]))[0], 0);
    }

    #[test]
    fn per_dimension_segment_counts() {
        let g = GridOrder::new(unit_bounds(), [8, 2]);
        assert_eq!(g.cell(&Point::new([0.49, 0.49])), [3, 0]);
        assert_eq!(g.cell(&Point::new([0.51, 0.51])), [4, 1]);
    }
}
