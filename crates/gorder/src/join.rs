//! The scheduled block nested-loops kNN join over G-ordered data.

use crate::grid::GridOrder;
use crate::pca::Pca;
use ann_core::stats::{AnnOutput, NeighborPair};
use ann_core::trace::{Phase, PruneReason, TraceEvent, Tracer};
use ann_geom::{min_min_dist_sq, Mbr, Point};
use ann_store::{BufferPool, HeapFile, Result};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Configuration for [`gorder_join`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GorderConfig {
    /// Neighbors per query object.
    pub k: usize,
    /// Grid segments per (principal) dimension; the GORDER paper's
    /// recommended operating range is tens-to-hundreds depending on
    /// dimensionality.
    pub segments_per_dim: u32,
    /// Weight grid resolution by each principal component's variance
    /// share (the GORDER paper's recommendation): the leading components
    /// get proportionally more segments, trailing near-constant ones as
    /// few as one. Defaults to `false` (uniform grid) — the configuration
    /// used for all recorded EXPERIMENTS.md runs; flip it on to match the
    /// original paper's tuning.
    pub variance_weighted_grid: bool,
    /// Pages per outer (`R`) block held in memory at a time.
    pub r_block_pages: usize,
    /// Pages per inner (`S`) block.
    pub s_block_pages: usize,
    /// Self-join mode: skip same-oid pairs.
    pub exclude_self: bool,
}

impl Default for GorderConfig {
    fn default() -> Self {
        GorderConfig {
            k: 1,
            segments_per_dim: 64,
            variance_weighted_grid: false,
            r_block_pages: 8,
            s_block_pages: 2,
            exclude_self: false,
        }
    }
}

/// A G-order-sorted dataset materialized on pages, chopped into blocks
/// with per-block bounding boxes (computed in the transformed space).
struct BlockFile<const D: usize> {
    heap: HeapFile,
    /// `(first_record_index, record_count, bbox)` per block.
    blocks: Vec<(u64, usize, Mbr<D>)>,
}

impl<const D: usize> BlockFile<D> {
    fn record_size() -> usize {
        8 + 8 * D
    }

    fn write(
        pool: Arc<BufferPool>,
        sorted: &[(u64, Point<D>)],
        block_pages: usize,
    ) -> Result<Self> {
        let mut heap = HeapFile::create(pool, Self::record_size())?;
        let records_per_block = (heap.records_per_page() * block_pages).max(1);
        let mut blocks = Vec::new();
        let mut buf = vec![0u8; Self::record_size()];
        for (i, (oid, p)) in sorted.iter().enumerate() {
            buf[..8].copy_from_slice(&oid.to_le_bytes());
            for d in 0..D {
                buf[8 + d * 8..16 + d * 8].copy_from_slice(&p[d].to_le_bytes());
            }
            heap.append(&buf)?;
            if i % records_per_block == 0 {
                blocks.push((i as u64, 0, Mbr::empty()));
            }
            let last = blocks.last_mut().expect("block started");
            last.1 += 1;
            last.2.expand_point(p);
        }
        Ok(BlockFile { heap, blocks })
    }

    fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Reads block `b` into memory (through the buffer pool; each page of
    /// the block is fetched once).
    fn read_block(&self, b: usize) -> Result<Vec<(u64, Point<D>)>> {
        let (first, count, _) = self.blocks[b];
        let mut out = Vec::with_capacity(count);
        self.heap.scan_range(first, count as u64, |_, bytes| {
            let oid = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            let mut c = [0.0; D];
            for (d, v) in c.iter_mut().enumerate() {
                *v = f64::from_le_bytes(bytes[8 + d * 8..16 + d * 8].try_into().unwrap());
            }
            out.push((oid, Point::new(c)));
        })?;
        Ok(out)
    }
}

#[derive(Clone, Copy, PartialEq)]
struct Best {
    dist_sq: f64,
    s_oid: u64,
}
impl Eq for Best {}
impl PartialOrd for Best {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Best {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .expect("finite")
            .then(self.s_oid.cmp(&other.s_oid))
    }
}

struct PointState<const D: usize> {
    oid: u64,
    point: Point<D>,
    best: BinaryHeap<Best>,
    want: usize,
}

impl<const D: usize> PointState<D> {
    fn bound_sq(&self) -> f64 {
        if self.best.len() < self.want {
            f64::INFINITY
        } else {
            self.best.peek().expect("non-empty").dist_sq
        }
    }

    fn offer(&mut self, dist_sq: f64, s_oid: u64) {
        if self.best.len() < self.want {
            self.best.push(Best { dist_sq, s_oid });
        } else if dist_sq < self.best.peek().expect("non-empty").dist_sq {
            self.best.pop();
            self.best.push(Best { dist_sq, s_oid });
        }
    }
}

/// Evaluates the kNN join of `r` against `s` with the GORDER method.
///
/// `pool` hosts the sorted block files; pass the same pool the competing
/// index-based algorithms use so I/O comparisons are like-for-like.
pub fn gorder_join<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    pool: Arc<BufferPool>,
    cfg: &GorderConfig,
) -> Result<AnnOutput> {
    gorder_join_traced(r, s, pool, cfg, Tracer::disabled())
}

/// [`gorder_join`] with an attached [`Tracer`]: per-phase spans (PCA,
/// sort+materialize, scheduled join) with pool I/O deltas, plus one
/// [`TraceEvent::GorderBlock`] per outer block recording how much of the
/// inner schedule the block bound cut off. With `Tracer::disabled()` this
/// is exactly [`gorder_join`].
pub fn gorder_join_traced<const D: usize>(
    r: &[(u64, Point<D>)],
    s: &[(u64, Point<D>)],
    pool: Arc<BufferPool>,
    cfg: &GorderConfig,
    tracer: Tracer<'_>,
) -> Result<AnnOutput> {
    assert!(cfg.k >= 1, "k must be at least 1");
    let mut out = AnnOutput::default();
    let io0 = pool.stats();
    if r.is_empty() || s.is_empty() {
        return Ok(out);
    }
    let io_now = || pool.stats();
    let span_q = tracer.span_enter(Phase::Query, io_now);

    // Phase 1: PCA on the union of both inputs.
    let span_pca = tracer.span_enter(Phase::Pca, io_now);
    let union: Vec<Point<D>> = r.iter().chain(s.iter()).map(|&(_, p)| p).collect();
    let pca = Pca::fit(&union);
    let mut tr: Vec<(u64, Point<D>)> = r.iter().map(|&(o, p)| (o, pca.transform(&p))).collect();
    let mut ts: Vec<(u64, Point<D>)> = s.iter().map(|&(o, p)| (o, pca.transform(&p))).collect();
    tracer.span_exit(Phase::Pca, span_pca, io_now);

    // Phase 2: grid-order sort and write back in sorted blocks.
    let span_sort = tracer.span_enter(Phase::Sort, io_now);
    let bounds = Mbr::from_points(tr.iter().chain(ts.iter()).map(|(_, p)| p));
    let grid = if cfg.variance_weighted_grid {
        // Distribute the total cell budget (segments_per_dim^D) over the
        // principal axes in proportion to their standard deviation, so
        // near-constant trailing components stop fragmenting the order.
        let mut segments = [1u32; D];
        let total_sigma: f64 = pca.variances.iter().map(|v| v.max(0.0).sqrt()).sum();
        if total_sigma > 0.0 {
            let log_budget = (cfg.segments_per_dim.max(1) as f64).ln() * D as f64;
            for d in 0..D {
                let share = pca.variances[d].max(0.0).sqrt() / total_sigma;
                segments[d] = (share * log_budget).exp().round().clamp(1.0, 4096.0) as u32;
            }
        }
        GridOrder::new(bounds, segments)
    } else {
        GridOrder::with_uniform_segments(bounds, cfg.segments_per_dim)
    };
    grid.sort(&mut tr);
    grid.sort(&mut ts);
    let rf = BlockFile::write(pool.clone(), &tr, cfg.r_block_pages)?;
    let sf = BlockFile::write(pool.clone(), &ts, cfg.s_block_pages)?;
    drop(tr);
    drop(ts);
    tracer.span_exit(Phase::Sort, span_sort, io_now);

    let k_eff = cfg.k + usize::from(cfg.exclude_self);

    // Phase 3: scheduled block nested-loops join.
    let span_j = tracer.span_enter(Phase::Join, io_now);
    let mut blocks_skipped_total = 0u64;
    for rb in 0..rf.num_blocks() {
        let r_bbox = rf.blocks[rb].2;
        let r_pts = rf.read_block(rb)?;
        let mut states: Vec<PointState<D>> = r_pts
            .into_iter()
            .map(|(oid, point)| PointState {
                oid,
                point,
                best: BinaryHeap::with_capacity(k_eff + 1),
                want: k_eff,
            })
            .collect();

        // Schedule: inner blocks in ascending MINMINDIST to the outer block.
        let mut schedule: Vec<(f64, usize)> = (0..sf.num_blocks())
            .map(|sb| (min_min_dist_sq(&r_bbox, &sf.blocks[sb].2), sb))
            .collect();
        schedule.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

        let mut block_bound = f64::INFINITY;
        let mut scanned = 0u32;
        for &(mind_sq, sb) in &schedule {
            if mind_sq > block_bound {
                break; // ascending schedule: all later blocks farther
            }
            scanned += 1;
            let s_bbox = sf.blocks[sb].2;
            let s_pts = sf.read_block(sb)?;
            for st in states.iter_mut() {
                // Per-point block filter.
                let pm = Mbr::from_point(&st.point);
                out.stats.distance_computations += 1;
                if min_min_dist_sq(&pm, &s_bbox) > st.bound_sq() {
                    continue;
                }
                for &(s_oid, s_pt) in &s_pts {
                    if cfg.exclude_self && s_oid == st.oid {
                        continue;
                    }
                    out.stats.distance_computations += 1;
                    st.offer(st.point.dist_sq(&s_pt), s_oid);
                }
            }
            block_bound = states
                .iter()
                .map(PointState::bound_sq)
                .fold(0.0f64, f64::max);
        }
        if tracer.enabled() {
            let skipped = schedule.len() as u32 - scanned;
            blocks_skipped_total += u64::from(skipped);
            tracer.event(|| TraceEvent::GorderBlock {
                outer: rb as u32,
                scanned,
                skipped,
            });
        }

        for st in states {
            let mut best: Vec<Best> = st.best.into_vec();
            best.sort_by(|a, b| {
                (a.dist_sq, a.s_oid)
                    .partial_cmp(&(b.dist_sq, b.s_oid))
                    .expect("finite")
            });
            for b in best.into_iter().take(cfg.k) {
                out.results.push(NeighborPair {
                    r_oid: st.oid,
                    s_oid: b.s_oid,
                    dist: b.dist_sq.sqrt(),
                });
            }
        }
    }

    if blocks_skipped_total > 0 {
        tracer.event(|| TraceEvent::Pruned {
            metric: "euclidean",
            reason: PruneReason::BlockSkip,
            count: blocks_skipped_total,
        });
    }
    tracer.span_exit(Phase::Join, span_j, io_now);
    tracer.span_exit(Phase::Query, span_q, io_now);

    out.stats.io = pool.stats().since(&io0);
    Ok(out)
}
