//! Principal Components Analysis via cyclic Jacobi rotations.
//!
//! GORDER transforms the union of both input datasets into its principal
//! component space so that the leading dimensions carry the most variance
//! (and hence most of the inter-point distance). `D` is small (≤ 16), so a
//! plain cyclic Jacobi eigensolver on the covariance matrix is both simple
//! and numerically robust — no external linear-algebra crate needed.

use ann_geom::Point;

/// A `D × D` symmetric matrix in row-major order.
pub type Matrix<const D: usize> = [[f64; D]; D];

/// Sample mean and covariance matrix of a point set.
///
/// Returns zeros for an empty input.
pub fn covariance<const D: usize>(points: &[Point<D>]) -> ([f64; D], Matrix<D>) {
    let mut mean = [0.0; D];
    let mut cov = [[0.0; D]; D];
    if points.is_empty() {
        return (mean, cov);
    }
    let n = points.len() as f64;
    for p in points {
        for d in 0..D {
            mean[d] += p[d];
        }
    }
    for m in mean.iter_mut() {
        *m /= n;
    }
    for p in points {
        for i in 0..D {
            let di = p[i] - mean[i];
            for j in i..D {
                cov[i][j] += di * (p[j] - mean[j]);
            }
        }
    }
    for i in 0..D {
        for j in i..D {
            cov[i][j] /= n;
            cov[j][i] = cov[i][j];
        }
    }
    (mean, cov)
}

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// `eigenvectors[i]` is the unit eigenvector for `eigenvalues[i]`.
pub fn jacobi_eigen<const D: usize>(a: &Matrix<D>) -> ([f64; D], Matrix<D>) {
    let mut a = *a;
    // v accumulates the rotations; starts as identity.
    let mut v = [[0.0; D]; D];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for _sweep in 0..64 {
        // Off-diagonal Frobenius norm — convergence test.
        let mut off = 0.0;
        for i in 0..D {
            for j in (i + 1)..D {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..D {
            for q in (p + 1)..D {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                // Classic Jacobi rotation annihilating a[p][q].
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..D {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..D {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..D).collect();
    let mut evals = [0.0; D];
    for d in 0..D {
        evals[d] = a[d][d];
    }
    order.sort_by(|&i, &j| evals[j].partial_cmp(&evals[i]).expect("finite"));
    let mut sorted_vals = [0.0; D];
    let mut sorted_vecs = [[0.0; D]; D];
    for (rank, &idx) in order.iter().enumerate() {
        sorted_vals[rank] = evals[idx];
        for k in 0..D {
            sorted_vecs[rank][k] = v[k][idx]; // column idx of v
        }
    }
    (sorted_vals, sorted_vecs)
}

/// A fitted PCA transform: center on the mean and rotate onto the
/// principal axes (descending variance).
#[derive(Clone, Debug)]
pub struct Pca<const D: usize> {
    /// Mean of the fitted data.
    pub mean: [f64; D],
    /// Row `i` is the `i`-th principal axis (unit vector).
    pub axes: Matrix<D>,
    /// Variance along each principal axis, descending.
    pub variances: [f64; D],
}

impl<const D: usize> Pca<D> {
    /// Fits the transform on `points` (typically the union of `R` and `S`).
    pub fn fit(points: &[Point<D>]) -> Self {
        let (mean, cov) = covariance(points);
        let (variances, axes) = jacobi_eigen(&cov);
        Pca {
            mean,
            axes,
            variances,
        }
    }

    /// Projects one point into principal-component space.
    pub fn transform(&self, p: &Point<D>) -> Point<D> {
        let mut out = [0.0; D];
        for (i, axis) in self.axes.iter().enumerate() {
            let mut acc = 0.0;
            for d in 0..D {
                acc += axis[d] * (p[d] - self.mean[d]);
            }
            out[i] = acc;
        }
        Point::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_known_data() {
        // Points on the line y = 2x: cov = [[var, 2var], [2var, 4var]].
        let pts: Vec<Point<2>> = (0..5)
            .map(|i| Point::new([i as f64, 2.0 * i as f64]))
            .collect();
        let (mean, cov) = covariance(&pts);
        assert_eq!(mean, [2.0, 4.0]);
        assert!((cov[0][0] - 2.0).abs() < 1e-12);
        assert!((cov[0][1] - 4.0).abs() < 1e-12);
        assert!((cov[1][1] - 8.0).abs() < 1e-12);
        assert_eq!(cov[0][1], cov[1][0]);
    }

    #[test]
    fn jacobi_diagonal_matrix_is_fixed_point() {
        let a: Matrix<3> = [[3.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 2.0]];
        let (vals, vecs) = jacobi_eigen(&a);
        assert_eq!(vals, [3.0, 2.0, 1.0]);
        // Eigenvectors are the (signed) standard basis, in sorted order.
        for (rank, dim) in [(0usize, 0usize), (1, 2), (2, 1)] {
            assert!((vecs[rank][dim].abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with axes (1,1)/√2 and
        // (1,-1)/√2.
        let a: Matrix<2> = [[2.0, 1.0], [1.0, 2.0]];
        let (vals, vecs) = jacobi_eigen(&a);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        let v0 = vecs[0];
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12, "axis of λ=3 is (1,1)");
    }

    #[test]
    fn eigenvectors_reconstruct_matrix() {
        // A = V diag(λ) Vᵀ must hold.
        let a: Matrix<4> = [
            [4.0, 1.0, 0.5, 0.0],
            [1.0, 3.0, 0.2, 0.1],
            [0.5, 0.2, 2.0, 0.3],
            [0.0, 0.1, 0.3, 1.0],
        ];
        let (vals, vecs) = jacobi_eigen(&a);
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += vecs[k][i] * vals[k] * vecs[k][j];
                }
                assert!(
                    (acc - a[i][j]).abs() < 1e-9,
                    "reconstruction mismatch at ({i},{j}): {acc} vs {}",
                    a[i][j]
                );
            }
        }
    }

    #[test]
    fn pca_rotates_correlated_data_onto_first_axis() {
        // Strongly correlated 2-D data: after PCA nearly all variance is on
        // component 0.
        let pts: Vec<Point<2>> = (0..1000)
            .map(|i| {
                let t = i as f64 / 1000.0;
                // Line plus small perpendicular noise.
                let noise = ((i * 37) % 100) as f64 / 100.0 - 0.5;
                Point::new([t + 0.01 * noise, 2.0 * t - 0.01 * noise])
            })
            .collect();
        let pca = Pca::fit(&pts);
        assert!(pca.variances[0] > 50.0 * pca.variances[1]);
        // Transform preserves pairwise distances (rotation + translation).
        let a = Point::new([0.25, 0.5]);
        let b = Point::new([0.75, 1.5]);
        let (ta, tb) = (pca.transform(&a), pca.transform(&b));
        assert!((ta.dist(&tb) - a.dist(&b)).abs() < 1e-9);
    }

    #[test]
    fn transform_is_distance_preserving_in_10d() {
        let pts: Vec<Point<10>> = ann_datagen::fc_like(500, 3)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let pca = Pca::fit(&pts);
        for w in pts.windows(2).take(100) {
            let d0 = w[0].dist(&w[1]);
            let d1 = pca.transform(&w[0]).dist(&pca.transform(&w[1]));
            assert!((d0 - d1).abs() < 1e-9 * (1.0 + d0));
        }
        // Variances are sorted descending.
        for w in pca.variances.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn empty_and_single_point_inputs() {
        let pca = Pca::<3>::fit(&[]);
        assert_eq!(pca.variances, [0.0; 3]);
        let one = [Point::new([1.0, 2.0, 3.0])];
        let pca = Pca::fit(&one);
        assert_eq!(pca.mean, [1.0, 2.0, 3.0]);
        let t = pca.transform(&one[0]);
        assert!(t.coords().iter().all(|&c| c.abs() < 1e-12));
    }
}
