//! A disk-resident **R\*-tree** (Beckmann, Kriegel, Schneider, Seeger,
//! SIGMOD 1990), built from scratch.
//!
//! This is the index structure all prior ANN work traverses, and the
//! baseline the paper's MBRQT is measured against. Running the generic
//! [`ann_core::mba::mba`] traversal over two `RStar` indices yields the
//! paper's **RBA** algorithm; the **BNN** baseline also searches an
//! `RStar`.
//!
//! Implemented features:
//!
//! * **ChooseSubtree** with the R\* rules: minimum *overlap* enlargement at
//!   the level above the leaves, minimum *area* enlargement elsewhere;
//! * the **R\* split**: margin-driven split-axis election followed by
//!   overlap-driven split-index election;
//! * **forced reinsertion**: the first overflow per level per insertion
//!   evicts the 30 % of entries farthest from the node center and
//!   re-inserts them, improving the packing;
//! * **STR bulk loading** (Sort-Tile-Recursive, Leutenegger et al. 1997)
//!   for building well-packed trees from a known dataset;
//! * one node per 8 KiB page via the shared codec in [`ann_core::node`].
//!
//! # Example
//!
//! ```
//! use ann_geom::Point;
//! use ann_rstar::{RStar, RStarConfig};
//! use ann_store::{BufferPool, MemDisk};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(MemDisk::new(), 64));
//! let pts: Vec<(u64, Point<2>)> = (0..1000)
//!     .map(|i| (i, Point::new([(i % 53) as f64, (i % 71) as f64])))
//!     .collect();
//! let tree = RStar::bulk_build(pool, &pts, &RStarConfig::default()).unwrap();
//! assert_eq!(ann_core::index::validate(&tree).unwrap().objects, 1000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bulk;
mod delete;
mod insert;
mod meta;

use ann_core::index::SpatialIndex;
use ann_core::node_cache::NodeCache;
use ann_core::node::Node;
use ann_core::snapshot::VersionedHandle;
use ann_core::trace::{Side, Tracer};
use ann_geom::{Mbr, Point};
use ann_store::{
    BufferPool, Journal, PageId, PageStore, Result, StoreError, Txn, VersionedStore,
};
use std::sync::Arc;

/// Tuning knobs for [`RStar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RStarConfig {
    /// Maximum entries per leaf node. `0` = fill one page.
    pub max_leaf_entries: usize,
    /// Maximum entries per internal node. `0` = fill one page.
    pub max_internal_entries: usize,
    /// Minimum fill as a percentage of the maximum (the R\* paper
    /// recommends 40).
    pub min_fill_percent: usize,
    /// Fraction of entries (percent) evicted by forced reinsertion
    /// (the R\* paper recommends 30). `0` disables reinsertion.
    pub reinsert_percent: usize,
}

impl Default for RStarConfig {
    fn default() -> Self {
        RStarConfig {
            max_leaf_entries: 0,
            max_internal_entries: 0,
            min_fill_percent: 40,
            reinsert_percent: 30,
        }
    }
}

impl RStarConfig {
    pub(crate) fn resolved_max<const D: usize>(&self, is_leaf: bool) -> usize {
        let configured = if is_leaf {
            self.max_leaf_entries
        } else {
            self.max_internal_entries
        };
        let v = if configured > 0 {
            configured
        } else {
            Node::<D>::single_page_capacity(is_leaf)
        };
        v.max(4)
    }
}

/// A disk-resident R\*-tree over `D`-dimensional points.
pub struct RStar<const D: usize> {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) meta_page: PageId,
    pub(crate) journal: Journal,
    pub(crate) root: PageId,
    /// Number of levels; leaves are level 0, the root is `height - 1`.
    pub(crate) height: u32,
    pub(crate) num_points: u64,
    pub(crate) bounds: Mbr<D>,
    pub(crate) max_leaf: usize,
    pub(crate) max_internal: usize,
    pub(crate) min_fill_percent: usize,
    pub(crate) reinsert_percent: usize,
    /// Decoded-node cache for query traversals. Epoch-keyed (bumped on
    /// every structural mutation) until versioning is enabled; keyed by
    /// snapshot version afterwards (shared with [`VersionedHandle`]s).
    pub(crate) cache: Arc<NodeCache<D>>,
    /// MVCC mode: when set, every mutation commits a new immutable
    /// snapshot version instead of updating pages in place.
    pub(crate) versions: Option<Arc<VersionedStore>>,
}

impl<const D: usize> RStar<D> {
    /// Creates an empty tree.
    pub fn create(pool: Arc<BufferPool>, config: &RStarConfig) -> Result<Self> {
        let meta_page = pool.allocate()?;
        let journal = crate::create_journal_after_meta(&pool, meta_page)?;
        let txn = Txn::begin(&pool, journal);
        let root = txn.allocate()?;
        ann_core::node::write_node::<D>(&txn, root, &Node::empty_leaf())?;
        let tree = RStar {
            pool: Arc::clone(&pool),
            meta_page,
            journal,
            root,
            height: 1,
            num_points: 0,
            bounds: Mbr::empty(),
            max_leaf: config.resolved_max::<D>(true),
            max_internal: config.resolved_max::<D>(false),
            min_fill_percent: config.min_fill_percent.clamp(10, 50),
            reinsert_percent: config.reinsert_percent.min(45),
            cache: Arc::new(NodeCache::default()),
            versions: None,
        };
        tree.save_meta_to(&txn)?;
        txn.commit()?;
        Ok(tree)
    }

    /// Bulk-builds a well-packed tree over `points` with STR.
    pub fn bulk_build(
        pool: Arc<BufferPool>,
        points: &[(u64, Point<D>)],
        config: &RStarConfig,
    ) -> Result<Self> {
        bulk::bulk_build(pool, points, config, Side::R, Tracer::disabled())
    }

    /// Bulk-builds a packed tree from a point *stream*, keeping memory
    /// bounded by `run_budget` records: the stream spills to `scratch`
    /// (computing bounds), external-sorts by `(hilbert_key, oid)`, and
    /// packs leaves sequentially in curve order. Use this when the
    /// dataset does not fit in memory; for in-memory data,
    /// [`bulk_build`](Self::bulk_build) (STR) packs marginally tighter.
    ///
    /// `scratch` holds only temporary spill pages — give it its own pool
    /// (typically over a [`ann_store::MemDisk`] or a separate file) so
    /// spill traffic cannot evict the tree's pages from `pool`.
    pub fn bulk_build_stream(
        pool: Arc<BufferPool>,
        scratch: Arc<BufferPool>,
        points: impl IntoIterator<Item = (u64, Point<D>)>,
        run_budget: usize,
        config: &RStarConfig,
    ) -> Result<Self> {
        bulk::bulk_build_stream(
            pool,
            scratch,
            points,
            run_budget,
            config,
            Side::R,
            Tracer::disabled(),
        )
    }

    /// [`bulk_build_stream`](Self::bulk_build_stream) with an attached
    /// [`Tracer`] (build span + per-level node tallies).
    pub fn bulk_build_stream_traced(
        pool: Arc<BufferPool>,
        scratch: Arc<BufferPool>,
        points: impl IntoIterator<Item = (u64, Point<D>)>,
        run_budget: usize,
        config: &RStarConfig,
        side: Side,
        tracer: Tracer<'_>,
    ) -> Result<Self> {
        bulk::bulk_build_stream(pool, scratch, points, run_budget, config, side, tracer)
    }

    /// [`bulk_build`](Self::bulk_build) with an attached [`Tracer`]:
    /// wraps construction in a `Build` span (pool I/O deltas included)
    /// and emits one [`ann_core::trace::TraceEvent::IndexLevelBuilt`] per
    /// tree level (level 0 is the root, matching the query-side per-level
    /// accounting), tagged with `side`. With `Tracer::disabled()` this is
    /// exactly [`bulk_build`](Self::bulk_build).
    pub fn bulk_build_traced(
        pool: Arc<BufferPool>,
        points: &[(u64, Point<D>)],
        config: &RStarConfig,
        side: Side,
        tracer: Tracer<'_>,
    ) -> Result<Self> {
        bulk::bulk_build(pool, points, config, side, tracer)
    }

    /// Opens a previously built tree from its metadata page.
    ///
    /// Opening runs crash recovery first — a committed-but-unapplied
    /// journal batch is replayed, a partial one is discarded — and then
    /// verifies every structural invariant with
    /// [`ann_core::index::validate`], so an `Ok` tree is never silently
    /// partial: after any mid-update crash this either restores a
    /// consistent tree or reports [`ann_store::StoreError::Corrupt`].
    pub fn open(pool: Arc<BufferPool>, meta_page: PageId) -> Result<Self> {
        let (journal, _recovery) = Journal::open(&pool, meta_page + 1)?;
        let tree = meta::load(pool, meta_page, journal)?;
        ann_core::index::validate(&tree)?;
        Ok(tree)
    }

    /// The metadata page identifying this tree on disk.
    pub fn meta_page(&self) -> PageId {
        self.meta_page
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Maximum entries per node (leaf, internal).
    pub fn capacities(&self) -> (usize, usize) {
        (self.max_leaf, self.max_internal)
    }

    /// Minimum entries per node of each kind (root excepted).
    pub fn min_entries(&self, is_leaf: bool) -> usize {
        let max = if is_leaf {
            self.max_leaf
        } else {
            self.max_internal
        };
        (max * self.min_fill_percent / 100).max(2)
    }

    /// Inserts one point (R\* insertion with forced reinsertion).
    pub fn insert(&mut self, oid: u64, point: Point<D>) -> Result<()> {
        insert::insert(self, oid, point)?;
        self.note_mutation();
        Ok(())
    }

    /// Deletes the object `(oid, point)` (both must match an indexed
    /// object exactly). Underfull nodes dissolve and their entries
    /// re-insert, per the classic CondenseTree treatment. Returns whether
    /// the object existed.
    pub fn delete(&mut self, oid: u64, point: &Point<D>) -> Result<bool> {
        let existed = delete::delete(self, oid, point)?;
        if existed {
            self.note_mutation();
        }
        Ok(existed)
    }

    /// Switches the tree into MVCC snapshot mode: from here on every
    /// insert/delete commits an immutable new version (copy-on-write
    /// pages) instead of updating pages in place, and concurrent readers
    /// pin versions through [`versioned_handle`](Self::versioned_handle)
    /// without ever blocking on the writer.
    ///
    /// `keep` bounds the history window (see [`ann_store::DEFAULT_KEEP`]).
    /// Returns the manifest head page the caller must persist to reopen
    /// the tree with [`open_versioned`](Self::open_versioned) — after the
    /// first versioned commit the meta page is copy-on-write and its
    /// original physical page goes stale, so the manifest (not the meta
    /// page alone) is the durable root of a versioned tree.
    pub fn enable_versioning(&mut self, keep: u32) -> Result<PageId> {
        if self.versions.is_some() {
            return Err(StoreError::corrupt("versioning is already enabled"));
        }
        let store = VersionedStore::create(Arc::clone(&self.pool), self.journal, keep)?;
        let head = store.manifest_head();
        // Fresh cache: version numbers live in their own key space, which
        // must not collide with the retired epoch counter's.
        self.cache = Arc::new(NodeCache::default());
        self.versions = Some(store);
        Ok(head)
    }

    /// Opens a versioned tree from its meta page and the manifest head
    /// returned by [`enable_versioning`](Self::enable_versioning). Runs
    /// journal crash recovery, loads the version manifest, and reads the
    /// meta fields *through* the latest snapshot (the on-disk meta page
    /// itself is stale once copy-on-write commits exist).
    pub fn open_versioned(
        pool: Arc<BufferPool>,
        meta_page: PageId,
        manifest_head: PageId,
    ) -> Result<Self> {
        let (journal, _recovery) = Journal::open(&pool, meta_page + 1)?;
        let store = VersionedStore::open(Arc::clone(&pool), journal, manifest_head)?;
        let snap = store.pin(None)?;
        let mut tree = meta::load_via(&snap, Arc::clone(&pool), meta_page, journal)?;
        drop(snap);
        tree.versions = Some(store);
        ann_core::index::validate(&tree)?;
        Ok(tree)
    }

    /// The tree's versioned store, when versioning is enabled.
    pub fn versioned_store(&self) -> Option<&Arc<VersionedStore>> {
        self.versions.as_ref()
    }

    /// A cloneable, thread-safe factory of pinned read views ([`None`]
    /// until [`enable_versioning`](Self::enable_versioning)). The handle
    /// shares this tree's node cache, so snapshot readers and the writer
    /// populate one cache keyed by `(version, page)`.
    pub fn versioned_handle(&self) -> Option<VersionedHandle<D>> {
        let store = self.versions.as_ref()?;
        Some(VersionedHandle::new(
            Arc::clone(store),
            Arc::clone(&self.cache),
            self.meta_page,
            meta::snapshot_meta_fields::<D>,
        ))
    }

    /// Writes all dirty pages through to the backing disk.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Post-mutation cache upkeep. Non-versioned trees invalidate the
    /// whole cache (epoch bump); versioned trees keep old-version entries
    /// live for pinned readers and only purge keys below the GC floor.
    fn note_mutation(&self) {
        match &self.versions {
            Some(store) => self.cache.retire_below(u64::from(store.version_floor())),
            None => self.cache.bump_epoch(),
        }
        debug_assert_eq!(
            self.cache.stale_len(),
            0,
            "node cache holds stale entries after a mutation"
        );
    }

    pub(crate) fn save_meta_to(&self, store: &impl PageStore) -> Result<()> {
        meta::save_to(self, store)
    }

    pub(crate) fn max_entries(&self, is_leaf: bool) -> usize {
        if is_leaf {
            self.max_leaf
        } else {
            self.max_internal
        }
    }
}

/// Creates the tree's journal right after its freshly allocated meta page,
/// enforcing the `meta_page + 1` adjacency convention that lets
/// [`RStar::open`] find the journal without persisting its id anywhere.
/// Interleaved allocations from another thread would break the convention,
/// so that is reported as an error rather than silently accepted.
pub(crate) fn create_journal_after_meta(pool: &BufferPool, meta_page: PageId) -> Result<Journal> {
    let journal = Journal::create(pool)?;
    if journal.header_page() != meta_page + 1 {
        return Err(StoreError::corrupt(
            "journal header page must immediately follow the meta page",
        ));
    }
    Ok(journal)
}

impl<const D: usize> SpatialIndex<D> for RStar<D> {
    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn root_page(&self) -> PageId {
        self.root
    }

    fn num_points(&self) -> u64 {
        self.num_points
    }

    fn bounds(&self) -> Mbr<D> {
        self.bounds
    }

    fn read_node(&self, page: PageId) -> Result<Node<D>> {
        match &self.versions {
            // A versioned tree's logical pages are remapped by COW
            // commits; direct tree reads go through the latest snapshot.
            Some(store) => ann_core::node::read_node(&store.pin(None)?, page),
            None => ann_core::node::read_node(self.pool.as_ref(), page),
        }
    }

    fn node_cache(&self) -> Option<&NodeCache<D>> {
        Some(self.cache.as_ref())
    }

    fn cache_key(&self) -> u64 {
        match &self.versions {
            // Share entries with ReadContexts pinned at the same version.
            Some(store) => u64::from(store.latest()),
            None => self.cache.epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versioned_mutations_preserve_pinned_snapshots() {
        let pool = Arc::new(BufferPool::new(ann_store::MemDisk::new(), 256));
        let mut tree = RStar::<2>::create(pool, &RStarConfig::default()).unwrap();
        tree.insert(0, Point::new([1.0, 1.0])).unwrap();
        tree.enable_versioning(8).unwrap();

        let handle = tree.versioned_handle().unwrap();
        let old = handle.pin(None).unwrap();
        assert_eq!(SpatialIndex::num_points(&old), 1);

        tree.insert(1, Point::new([2.0, 2.0])).unwrap();
        tree.insert(2, Point::new([60.0, 60.0])).unwrap();
        assert!(tree.delete(0, &Point::new([1.0, 1.0])).unwrap());

        // The writer sees the newest state; the pinned reader still sees
        // exactly the point set from before the mutations.
        assert_eq!(SpatialIndex::num_points(&tree), 2);
        let old_objs = ann_core::index::collect_objects(&old).unwrap();
        assert_eq!(old_objs, vec![(0, Point::new([1.0, 1.0]))]);
        ann_core::index::validate(&old).unwrap();
        ann_core::index::validate(&tree).unwrap();

        let new = handle.pin(None).unwrap();
        assert_eq!(ann_core::index::collect_objects(&new).unwrap().len(), 2);
        assert!(new.version() > old.version());
        drop((old, new));
        assert_eq!(handle.store().pinned_readers(), 0);
    }

    #[test]
    fn versioned_tree_reopens_from_manifest() {
        let pool = Arc::new(BufferPool::new(ann_store::MemDisk::new(), 256));
        let mut tree = RStar::<2>::create(Arc::clone(&pool), &RStarConfig::default()).unwrap();
        let meta_page = tree.meta_page();
        let head = tree.enable_versioning(4).unwrap();
        for i in 0..40u64 {
            tree.insert(i, Point::new([(i % 10) as f64, (i / 10) as f64]))
                .unwrap();
        }
        tree.flush().unwrap();
        drop(tree);

        let tree = RStar::<2>::open_versioned(pool, meta_page, head).unwrap();
        assert_eq!(SpatialIndex::num_points(&tree), 40);
        let handle = tree.versioned_handle().unwrap();
        let ctx = handle.pin(None).unwrap();
        assert_eq!(ann_core::index::collect_objects(&ctx).unwrap().len(), 40);
    }
}
