//! R\*-tree insertion: ChooseSubtree, overflow treatment (forced
//! reinsertion), and the R\* split.

use crate::RStar;
use ann_core::node::{read_node, write_node, Entry, Node, NodeEntry};
use ann_geom::{Mbr, Point};
use ann_store::{PageId, PageStore, Result, StoreError, Txn};
use std::sync::Arc;

/// Inserts one point; see [`RStar::insert`].
///
/// The whole update — every rewritten node page, any split or reinsertion
/// fallout, and the meta page — runs inside one [`Txn`], so it reaches
/// disk atomically: a crash (or an injected fault) anywhere before the
/// commit point leaves the on-disk tree exactly as it was.
pub(crate) fn insert<const D: usize>(tree: &mut RStar<D>, oid: u64, point: Point<D>) -> Result<()> {
    if !point.is_finite() {
        return Err(StoreError::corrupt("points must have finite coordinates"));
    }
    let pool = Arc::clone(&tree.pool);
    let vstore = tree.versions.clone();
    let txn = match vstore.as_ref() {
        // Versioned mode: reads translate through the latest snapshot and
        // the commit produces a new immutable version (copy-on-write).
        Some(store) => Txn::begin_versioned(store)?,
        None => Txn::begin(&pool, tree.journal),
    };
    let saved = (tree.root, tree.height, tree.num_points, tree.bounds);
    let result = (|| -> Result<()> {
        let entry = Entry::Object(ann_core::node::ObjectEntry { oid, point });
        // Forced reinsertion fires at most once per level per logical insert.
        let mut reinsert_done = vec![false; tree.height as usize + 2];
        // Pending (entry, target level) work items; reinserted orphans append.
        let mut pending: Vec<(Entry<D>, u32)> = vec![(entry, 0)];
        while let Some((e, level)) = pending.pop() {
            insert_entry_at_level(tree, &txn, e, level, &mut reinsert_done, &mut pending)?;
        }
        tree.num_points += 1;
        tree.bounds.expand_point(&point);
        tree.save_meta_to(&txn)
    })();
    match result.and_then(|()| txn.commit()) {
        Ok(()) => Ok(()),
        Err(e) => {
            // The on-disk tree is untouched (the txn never committed);
            // roll the in-memory mirrors back to match it.
            (tree.root, tree.height, tree.num_points, tree.bounds) = saved;
            Err(e)
        }
    }
}

/// Places `entry` into some node at `target_level`, handling splits up to
/// and including the root. Shared with deletion, which re-inserts the
/// surviving entries of dissolved nodes through the same path.
pub(crate) fn insert_entry_at_level<const D: usize>(
    tree: &mut RStar<D>,
    txn: &Txn<'_>,
    entry: Entry<D>,
    target_level: u32,
    reinsert_done: &mut Vec<bool>,
    pending: &mut Vec<(Entry<D>, u32)>,
) -> Result<()> {
    let root_level = tree.height - 1;
    let outcome = descend(
        tree,
        txn,
        tree.root,
        root_level,
        entry,
        target_level,
        reinsert_done,
        pending,
    )?;
    if let Some(sibling) = outcome.split {
        // Root split: grow the tree by one level.
        let old_root_entry = NodeEntry {
            page: tree.root,
            count: outcome.count,
            mbr: outcome.mbr,
        };
        let mut new_root = Node {
            is_leaf: false,
            aux: 0,
            mbr: Mbr::empty(),
            entries: vec![Entry::Node(old_root_entry), Entry::Node(sibling)],
        };
        new_root.recompute_mbr();
        let page = txn.allocate()?;
        write_node(txn, page, &new_root)?;
        tree.root = page;
        tree.height += 1;
        reinsert_done.push(false);
    }
    Ok(())
}

/// What a recursive insertion step reports back to its parent.
struct StepOutcome<const D: usize> {
    /// Updated subtree cardinality.
    count: u64,
    /// Updated subtree MBR.
    mbr: Mbr<D>,
    /// A new sibling produced by a split, to be added to the parent.
    split: Option<NodeEntry<D>>,
}

fn descend<const D: usize>(
    tree: &RStar<D>,
    txn: &Txn<'_>,
    page: PageId,
    level: u32,
    entry: Entry<D>,
    target_level: u32,
    reinsert_done: &mut Vec<bool>,
    pending: &mut Vec<(Entry<D>, u32)>,
) -> Result<StepOutcome<D>> {
    let mut node = read_node::<D>(txn, page)?;

    if level == target_level {
        node.entries.push(entry);
    } else {
        let at = choose_subtree(&node, &entry.mbr(), level)?;
        let Entry::Node(child) = node.entries[at] else {
            return Err(StoreError::corrupt("internal node holds an object"));
        };
        let outcome = descend(
            tree,
            txn,
            child.page,
            level - 1,
            entry,
            target_level,
            reinsert_done,
            pending,
        )?;
        node.entries[at] = Entry::Node(NodeEntry {
            page: child.page,
            count: outcome.count,
            mbr: outcome.mbr,
        });
        if let Some(sibling) = outcome.split {
            node.entries.push(Entry::Node(sibling));
        }
    }

    let max = tree.max_entries(node.is_leaf);
    if node.entries.len() <= max {
        node.recompute_mbr();
        let count = node.count();
        let mbr = node.mbr;
        write_node(txn, page, &node)?;
        return Ok(StepOutcome {
            count,
            mbr,
            split: None,
        });
    }

    // Overflow treatment (R* §4.3): the first overflow on each non-root
    // level triggers forced reinsertion; later overflows (and the root)
    // split.
    let is_root = level == tree.height - 1;
    let lvl = level as usize;
    if !is_root && tree.reinsert_percent > 0 && !reinsert_done.get(lvl).copied().unwrap_or(true) {
        reinsert_done[lvl] = true;
        let evicted = forced_reinsert_victims(&mut node, max * tree.reinsert_percent / 100);
        node.recompute_mbr();
        let count = node.count();
        let mbr = node.mbr;
        write_node(txn, page, &node)?;
        // Evictees are farthest-first; pushing them in that order onto the
        // LIFO work list re-inserts the nearest one first (close reinsert).
        for e in evicted {
            pending.push((e, level));
        }
        return Ok(StepOutcome {
            count,
            mbr,
            split: None,
        });
    }

    // Split.
    let min = tree.min_entries(node.is_leaf);
    let (keep, moved) = rstar_split(std::mem::take(&mut node.entries), min);
    node.entries = keep;
    node.recompute_mbr();
    let count = node.count();
    let mbr = node.mbr;
    write_node(txn, page, &node)?;

    let mut sibling = Node {
        is_leaf: node.is_leaf,
        aux: 0,
        mbr: Mbr::empty(),
        entries: moved,
    };
    sibling.recompute_mbr();
    let sib_page = txn.allocate()?;
    write_node(txn, sib_page, &sibling)?;

    Ok(StepOutcome {
        count,
        mbr,
        split: Some(NodeEntry {
            page: sib_page,
            count: sibling.count(),
            mbr: sibling.mbr,
        }),
    })
}

/// R\* ChooseSubtree: among `node`'s children pick the best host for an
/// entry with MBR `embr`. At the level just above the leaves the criterion
/// is minimum *overlap* enlargement; higher up, minimum *area* enlargement
/// (ties: smaller area).
fn choose_subtree<const D: usize>(node: &Node<D>, embr: &Mbr<D>, level: u32) -> Result<usize> {
    if node.entries.is_empty() {
        return Err(StoreError::corrupt("cannot route into an empty node"));
    }
    let children_are_leaves = level == 1;
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, e) in node.entries.iter().enumerate() {
        let mbr = e.mbr();
        let enlarged = mbr.union(embr);
        let area = mbr.volume();
        let area_enlargement = enlarged.volume() - area;
        let overlap_enlargement = if children_are_leaves {
            let mut delta = 0.0;
            for (j, other) in node.entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                let om = other.mbr();
                delta += enlarged.intersection_volume(&om) - mbr.intersection_volume(&om);
            }
            delta
        } else {
            0.0
        };
        let key = if children_are_leaves {
            (overlap_enlargement, area_enlargement, area)
        } else {
            (area_enlargement, area, 0.0)
        };
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    Ok(best)
}

/// Removes the `p` entries whose centers lie farthest from the node's
/// center and returns them nearest-first (the R\* "close reinsert" order).
fn forced_reinsert_victims<const D: usize>(node: &mut Node<D>, p: usize) -> Vec<Entry<D>> {
    let p = p.clamp(1, node.entries.len() - 1);
    let center = Mbr::from_entries(&node.entries).center();
    // (distance from node center, entry index)
    let mut order: Vec<(f64, usize)> = node
        .entries
        .iter()
        .enumerate()
        .map(|(i, e)| (e.mbr().center().dist_sq(&center), i))
        .collect();
    order.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let victim_idx: Vec<usize> = order.iter().take(p).map(|&(_, i)| i).collect();
    let victims: Vec<Entry<D>> = victim_idx.iter().map(|&i| node.entries[i]).collect();
    let victim_set: std::collections::HashSet<usize> = victim_idx.into_iter().collect();
    let mut keep = Vec::with_capacity(node.entries.len() - p);
    for (i, e) in node.entries.drain(..).enumerate() {
        if !victim_set.contains(&i) {
            keep.push(e);
        }
    }
    node.entries = keep;
    // Victims stay farthest-first: the caller pushes them onto a LIFO work
    // list, so the nearest evictee is re-inserted first ("close reinsert").
    victims
}

/// The R\* split: returns `(group_1, group_2)` of an overflowing entry set.
///
/// Split axis: the axis minimizing the total margin over all candidate
/// distributions (considering both lower- and upper-bound sort orders).
/// Split index: the distribution on that axis with least overlap between
/// the two group MBRs (ties: least combined area).
pub(crate) fn rstar_split<const D: usize>(
    entries: Vec<Entry<D>>,
    min: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    let total = entries.len();
    debug_assert!(total >= 2 * min, "split needs at least 2*min entries");

    // For each axis and each of the two sort keys, evaluate all legal
    // distributions.
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut sorted_by: Vec<Vec<Entry<D>>> = Vec::with_capacity(2 * D);
    for axis in 0..D {
        for upper in [false, true] {
            let mut v = entries.clone();
            v.sort_by(|a, b| {
                let (ka, kb) = if upper {
                    (a.mbr().hi[axis], b.mbr().hi[axis])
                } else {
                    (a.mbr().lo[axis], b.mbr().lo[axis])
                };
                ka.partial_cmp(&kb).expect("finite")
            });
            sorted_by.push(v);
        }
        let mut margin_sum = 0.0;
        for v in &sorted_by[2 * axis..2 * axis + 2] {
            for split_at in min..=(total - min) {
                let g1 = Mbr::from_entries(&v[..split_at]);
                let g2 = Mbr::from_entries(&v[split_at..]);
                margin_sum += g1.margin() + g2.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Pick the distribution on the winning axis. Margin is the final
    // tie-break: with degenerate (zero-volume) MBRs — e.g. collinear
    // points — overlap and area are all zero and margin is the only
    // discriminating measure.
    let mut best: Option<(f64, f64, f64, usize, usize)> = None;
    for (s, v) in sorted_by[2 * best_axis..2 * best_axis + 2]
        .iter()
        .enumerate()
    {
        for split_at in min..=(total - min) {
            let m1 = Mbr::from_entries(&v[..split_at]);
            let m2 = Mbr::from_entries(&v[split_at..]);
            let overlap = m1.intersection_volume(&m2);
            let area = m1.volume() + m2.volume();
            let margin = m1.margin() + m2.margin();
            if best
                .map(|(bo, ba, bm, _, _)| (overlap, area, margin) < (bo, ba, bm))
                .unwrap_or(true)
            {
                best = Some((overlap, area, margin, s, split_at));
            }
        }
    }
    let (_, _, _, s, split_at) = best.expect("at least one distribution");
    let chosen = &sorted_by[2 * best_axis + s];
    (chosen[..split_at].to_vec(), chosen[split_at..].to_vec())
}

/// Helper: tight MBR over a slice of entries.
trait FromEntries<const D: usize> {
    fn from_entries(entries: &[Entry<D>]) -> Mbr<D>;
}

impl<const D: usize> FromEntries<D> for Mbr<D> {
    fn from_entries(entries: &[Entry<D>]) -> Mbr<D> {
        let mut m = Mbr::empty();
        for e in entries {
            m.expand(&e.mbr());
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann_core::node::ObjectEntry;

    fn obj(oid: u64, x: f64, y: f64) -> Entry<2> {
        Entry::Object(ObjectEntry {
            oid,
            point: Point::new([x, y]),
        })
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clearly separated clusters along x must split cleanly.
        let mut entries = vec![];
        for i in 0..8 {
            entries.push(obj(i, i as f64 * 0.1, 0.0));
        }
        for i in 8..16 {
            entries.push(obj(i, 100.0 + i as f64 * 0.1, 0.0));
        }
        let (g1, g2) = rstar_split(entries, 4);
        assert_eq!(g1.len() + g2.len(), 16);
        let m1 = Mbr::from_entries(&g1);
        let m2 = Mbr::from_entries(&g2);
        assert_eq!(m1.intersection_volume(&m2), 0.0);
        // One group entirely left, one entirely right.
        assert!(m1.hi[0] < 50.0 || m1.lo[0] > 50.0);
        assert!(m2.hi[0] < 50.0 || m2.lo[0] > 50.0);
    }

    #[test]
    fn split_respects_min_fill() {
        let entries: Vec<Entry<2>> = (0..20).map(|i| obj(i, i as f64, i as f64)).collect();
        let (g1, g2) = rstar_split(entries, 8);
        assert!(g1.len() >= 8 && g2.len() >= 8);
        assert_eq!(g1.len() + g2.len(), 20);
    }

    #[test]
    fn choose_subtree_prefers_containing_child() {
        let child = |page: u32, lo: [f64; 2], hi: [f64; 2]| {
            Entry::Node(NodeEntry {
                page,
                count: 1,
                mbr: Mbr::new(lo, hi),
            })
        };
        let node = Node {
            is_leaf: false,
            aux: 0,
            mbr: Mbr::new([0.0, 0.0], [20.0, 10.0]),
            entries: vec![
                child(1, [0.0, 0.0], [10.0, 10.0]),
                child(2, [15.0, 0.0], [20.0, 10.0]),
            ],
        };
        // Point inside child 1: no enlargement there.
        let p = Mbr::from_point(&Point::new([5.0, 5.0]));
        assert_eq!(choose_subtree(&node, &p, 2).unwrap(), 0);
        // Point near child 2.
        let q = Mbr::from_point(&Point::new([19.0, 5.0]));
        assert_eq!(choose_subtree(&node, &q, 2).unwrap(), 1);
    }

    #[test]
    fn forced_reinsert_evicts_farthest() {
        let mut node = Node {
            is_leaf: true,
            aux: 0,
            mbr: Mbr::empty(),
            entries: (0..12)
                .map(|i| obj(i, (i % 4) as f64, (i / 4) as f64))
                .collect(),
        };
        node.recompute_mbr();
        let center = node.mbr.center();
        let dist_of = |e: &Entry<2>| e.mbr().center().dist_sq(&center);
        let victims = forced_reinsert_victims(&mut node, 3);
        assert_eq!(victims.len(), 3);
        assert_eq!(node.entries.len(), 9);
        // Every victim is at least as far from the center as every keeper.
        let min_victim = victims.iter().map(dist_of).fold(f64::INFINITY, f64::min);
        let max_keeper = node.entries.iter().map(dist_of).fold(0.0f64, f64::max);
        assert!(min_victim >= max_keeper);
    }
}
