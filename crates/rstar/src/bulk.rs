//! STR (Sort-Tile-Recursive) bulk loading.
//!
//! STR packs a static dataset into a near-100%-full R-tree: sort by the
//! first dimension, cut into vertical slabs, recursively tile each slab by
//! the remaining dimensions, and emit full leaves; then pack the leaf
//! entries the same way into internal levels until one node remains.

use crate::{RStar, RStarConfig};
use ann_core::extsort::{HilbertSorter, PointSpill};
use ann_core::node::{write_node, Entry, Node, NodeEntry, ObjectEntry};
use ann_core::trace::{Phase, Side, TraceEvent, Tracer};
use ann_geom::{Mbr, Point};
use ann_store::{BufferPool, Result, StoreError, Txn};
use std::sync::Arc;

/// Builds a packed tree over `points`; see [`RStar::bulk_build`].
pub(crate) fn bulk_build<const D: usize>(
    pool: Arc<BufferPool>,
    points: &[(u64, Point<D>)],
    config: &RStarConfig,
    side: Side,
    tracer: Tracer<'_>,
) -> Result<RStar<D>> {
    if points.iter().any(|(_, p)| !p.is_finite()) {
        return Err(StoreError::corrupt("points must have finite coordinates"));
    }
    let io_now = || pool.stats();
    let span_b = tracer.span_enter(Phase::Build, io_now);
    let max_leaf = config.resolved_max::<D>(true);
    let max_internal = config.resolved_max::<D>(false);
    let meta_page = pool.allocate()?;
    let journal = crate::create_journal_after_meta(&pool, meta_page)?;

    // Pack leaves: tile the points, one leaf per tile.
    let mut leaf_fill = (max_leaf * 9) / 10; // leave headroom for inserts
    leaf_fill = leaf_fill.max(1);
    let mut internal_fill = ((max_internal * 9) / 10).max(2);

    let mut current: Vec<Entry<D>> = Vec::new();
    let mut height = 1u32;
    // Nodes written per packing round; round 0 is the leaf level.
    let mut round_nodes: Vec<u64> = Vec::new();
    {
        let mut pts: Vec<(u64, Point<D>)> = points.to_vec();
        let mut tiles: Vec<Vec<(u64, Point<D>)>> = Vec::new();
        tile_points(&mut pts, leaf_fill, 0, &mut tiles);
        for tile in tiles {
            let mut node = Node {
                is_leaf: true,
                aux: 0,
                mbr: Mbr::empty(),
                entries: tile
                    .into_iter()
                    .map(|(oid, point)| Entry::Object(ObjectEntry { oid, point }))
                    .collect(),
            };
            node.recompute_mbr();
            let page = pool.allocate()?;
            write_node(&pool, page, &node)?;
            current.push(Entry::Node(NodeEntry {
                page,
                count: node.entries.len() as u64,
                mbr: node.mbr,
            }));
        }
    }

    // Handle the empty dataset: a single empty leaf as the root.
    if current.is_empty() {
        let page = pool.allocate()?;
        write_node::<D>(&pool, page, &Node::empty_leaf())?;
        let tree = RStar {
            pool: Arc::clone(&pool),
            meta_page,
            journal,
            root: page,
            height: 1,
            num_points: 0,
            bounds: Mbr::empty(),
            max_leaf,
            max_internal,
            min_fill_percent: config.min_fill_percent.clamp(10, 50),
            reinsert_percent: config.reinsert_percent.min(45),
            cache: Arc::new(ann_core::node_cache::NodeCache::default()),
            versions: None,
        };
        commit_meta(&pool, &tree)?;
        tracer.event(|| TraceEvent::IndexLevelBuilt {
            side,
            level: 0,
            nodes: 1,
        });
        tracer.span_exit(Phase::Build, span_b, io_now);
        return Ok(tree);
    }
    round_nodes.push(current.len() as u64);

    // Pack internal levels until a single entry remains.
    internal_fill = internal_fill.max(2);
    while current.len() > 1 {
        let mut tiles: Vec<Vec<Entry<D>>> = Vec::new();
        tile_entries(&mut current, internal_fill, 0, &mut tiles);
        let mut next: Vec<Entry<D>> = Vec::with_capacity(tiles.len());
        for tile in tiles {
            let mut node = Node {
                is_leaf: false,
                aux: 0,
                mbr: Mbr::empty(),
                entries: tile,
            };
            node.recompute_mbr();
            let page = pool.allocate()?;
            write_node(&pool, page, &node)?;
            next.push(Entry::Node(NodeEntry {
                page,
                count: node.count(),
                mbr: node.mbr,
            }));
        }
        round_nodes.push(next.len() as u64);
        current = next;
        height += 1;
    }

    let Entry::Node(root_entry) = current[0] else {
        unreachable!("packing produces node entries")
    };
    // A single leaf needs no extra root; `current[0]` is already it.
    let tree = RStar {
        pool: Arc::clone(&pool),
        meta_page,
        journal,
        root: root_entry.page,
        height,
        num_points: points.len() as u64,
        bounds: Mbr::from_points(points.iter().map(|(_, p)| p)),
        max_leaf,
        max_internal,
        min_fill_percent: config.min_fill_percent.clamp(10, 50),
        reinsert_percent: config.reinsert_percent.min(45),
        cache: Arc::new(ann_core::node_cache::NodeCache::default()),
        versions: None,
    };
    commit_meta(&pool, &tree)?;
    if tracer.enabled() {
        // round 0 = leaves; report levels with 0 = root to match the
        // query-side per-level accounting.
        for (round, &nodes) in round_nodes.iter().enumerate() {
            let level = round_nodes.len() as u32 - 1 - round as u32;
            tracer.event(|| TraceEvent::IndexLevelBuilt { side, level, nodes });
        }
    }
    tracer.span_exit(Phase::Build, span_b, io_now);
    Ok(tree)
}

/// Builds a packed tree from a point *stream*; see
/// [`RStar::bulk_build_stream`].
///
/// Unlike [`bulk_build`], which materializes and tiles the whole dataset
/// (STR), this keeps memory bounded by `run_budget` records regardless of
/// input size:
///
/// 1. the stream is consumed once into a raw spill on `scratch`, which
///    computes the dataset bounds the Hilbert grid needs up front;
/// 2. the spill replays into a [`HilbertSorter`] (runs of `run_budget`
///    records, spilled sorted, k-way merged);
/// 3. leaves are packed *sequentially* from the merged `(hilbert_key,
///    oid)` order — curve locality replaces STR's tiling — and internal
///    levels chunk the previous level's entries in that same order.
///
/// The result is deterministic for a given input *set* (the `(key, oid)`
/// order is total, so chunking of the input stream is immaterial) but is
/// a different — Hilbert-packed rather than STR-packed — tree than
/// [`bulk_build`] produces. All structural invariants
/// ([`ann_core::index::validate`]) hold identically.
pub(crate) fn bulk_build_stream<const D: usize>(
    pool: Arc<BufferPool>,
    scratch: Arc<BufferPool>,
    points: impl IntoIterator<Item = (u64, Point<D>)>,
    run_budget: usize,
    config: &RStarConfig,
    side: Side,
    tracer: Tracer<'_>,
) -> Result<RStar<D>> {
    let io_now = || pool.stats();
    let span_b = tracer.span_enter(Phase::Build, io_now);
    let max_leaf = config.resolved_max::<D>(true);
    let max_internal = config.resolved_max::<D>(false);

    // Pass 1: stream to a raw spill (bounds + finite check).
    let spill = PointSpill::consume(Arc::clone(&scratch), points)?;
    // Pass 2: replay through the external sorter.
    let mut sorter = HilbertSorter::new(Arc::clone(&scratch), spill.bounds, run_budget.max(1));
    spill.replay(|oid, p| sorter.push(oid, p))?;
    let mut stream = sorter.finish()?;

    let meta_page = pool.allocate()?;
    let journal = crate::create_journal_after_meta(&pool, meta_page)?;
    let leaf_fill = ((max_leaf * 9) / 10).max(1);
    let internal_fill = ((max_internal * 9) / 10).max(2);

    // Pack leaves sequentially in merge order.
    let mut current: Vec<Entry<D>> = Vec::new();
    let mut height = 1u32;
    let mut round_nodes: Vec<u64> = Vec::new();
    let mut pending: Vec<Entry<D>> = Vec::with_capacity(leaf_fill);
    loop {
        let rec = stream.next_point()?;
        if let Some(r) = &rec {
            pending.push(Entry::Object(ObjectEntry {
                oid: r.oid,
                point: r.point,
            }));
        }
        if pending.len() == leaf_fill || (rec.is_none() && !pending.is_empty()) {
            let mut node = Node {
                is_leaf: true,
                aux: 0,
                mbr: Mbr::empty(),
                entries: std::mem::take(&mut pending),
            };
            node.recompute_mbr();
            let page = pool.allocate()?;
            write_node(&pool, page, &node)?;
            current.push(Entry::Node(NodeEntry {
                page,
                count: node.entries.len() as u64,
                mbr: node.mbr,
            }));
            pending = node.entries; // recycle the (moved-out) capacity
            pending.clear();
        }
        if rec.is_none() {
            break;
        }
    }

    // Empty dataset: a single empty leaf as the root, exactly as in the
    // in-memory build.
    if current.is_empty() {
        let page = pool.allocate()?;
        write_node::<D>(&pool, page, &Node::empty_leaf())?;
        let tree = RStar {
            pool: Arc::clone(&pool),
            meta_page,
            journal,
            root: page,
            height: 1,
            num_points: 0,
            bounds: Mbr::empty(),
            max_leaf,
            max_internal,
            min_fill_percent: config.min_fill_percent.clamp(10, 50),
            reinsert_percent: config.reinsert_percent.min(45),
            cache: Arc::new(ann_core::node_cache::NodeCache::default()),
            versions: None,
        };
        commit_meta(&pool, &tree)?;
        tracer.event(|| TraceEvent::IndexLevelBuilt {
            side,
            level: 0,
            nodes: 1,
        });
        tracer.span_exit(Phase::Build, span_b, io_now);
        return Ok(tree);
    }
    round_nodes.push(current.len() as u64);

    // Internal levels: consecutive chunks of the previous level, which is
    // already in Hilbert order — sequential chunking preserves locality.
    while current.len() > 1 {
        let mut next: Vec<Entry<D>> = Vec::with_capacity(current.len().div_ceil(internal_fill));
        for chunk in current.chunks(internal_fill) {
            let mut node = Node {
                is_leaf: false,
                aux: 0,
                mbr: Mbr::empty(),
                entries: chunk.to_vec(),
            };
            node.recompute_mbr();
            let page = pool.allocate()?;
            write_node(&pool, page, &node)?;
            next.push(Entry::Node(NodeEntry {
                page,
                count: node.count(),
                mbr: node.mbr,
            }));
        }
        round_nodes.push(next.len() as u64);
        current = next;
        height += 1;
    }

    let Entry::Node(root_entry) = current[0] else {
        unreachable!("packing produces node entries")
    };
    let tree = RStar {
        pool: Arc::clone(&pool),
        meta_page,
        journal,
        root: root_entry.page,
        height,
        num_points: spill.len,
        bounds: spill.bounds,
        max_leaf,
        max_internal,
        min_fill_percent: config.min_fill_percent.clamp(10, 50),
        reinsert_percent: config.reinsert_percent.min(45),
        cache: Arc::new(ann_core::node_cache::NodeCache::default()),
        versions: None,
    };
    commit_meta(&pool, &tree)?;
    if tracer.enabled() {
        for (round, &nodes) in round_nodes.iter().enumerate() {
            let level = round_nodes.len() as u32 - 1 - round as u32;
            tracer.event(|| TraceEvent::IndexLevelBuilt { side, level, nodes });
        }
    }
    tracer.span_exit(Phase::Build, span_b, io_now);
    Ok(tree)
}

/// Finishes a bulk build durably: node pages (written straight through
/// the pool — until the meta page exists nothing references them, so a
/// crash mid-build just leaves an unopenable meta page) are flushed
/// first, then the meta page commits through the journal.
fn commit_meta<const D: usize>(pool: &Arc<BufferPool>, tree: &RStar<D>) -> Result<()> {
    pool.flush_all()?;
    let txn = Txn::begin(pool, tree.journal);
    tree.save_meta_to(&txn)?;
    txn.commit()
}

/// Recursively tiles `pts` into chunks of `cap`, sorting by dimension
/// `dim` and slicing into `ceil((n/cap)^(1/(D-dim)))` slabs.
fn tile_points<const D: usize>(
    pts: &mut [(u64, Point<D>)],
    cap: usize,
    dim: usize,
    out: &mut Vec<Vec<(u64, Point<D>)>>,
) {
    let n = pts.len();
    if n == 0 {
        return;
    }
    if n <= cap {
        out.push(pts.to_vec());
        return;
    }
    if dim + 1 >= D {
        // Last dimension: emit consecutive runs of `cap`.
        pts.sort_by(|a, b| a.1[dim].partial_cmp(&b.1[dim]).expect("finite"));
        for chunk in pts.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    pts.sort_by(|a, b| a.1[dim].partial_cmp(&b.1[dim]).expect("finite"));
    let tiles_total = n.div_ceil(cap);
    let slabs = (tiles_total as f64)
        .powf(1.0 / (D - dim) as f64)
        .ceil()
        .max(1.0) as usize;
    let per_slab = n.div_ceil(slabs);
    for slab in pts.chunks_mut(per_slab) {
        tile_points(slab, cap, dim + 1, out);
    }
}

/// Same tiling for already-built node entries, keyed by MBR centers.
fn tile_entries<const D: usize>(
    entries: &mut [Entry<D>],
    cap: usize,
    dim: usize,
    out: &mut Vec<Vec<Entry<D>>>,
) {
    let n = entries.len();
    if n == 0 {
        return;
    }
    if n <= cap {
        out.push(entries.to_vec());
        return;
    }
    let key = |e: &Entry<D>, d: usize| e.mbr().center()[d];
    entries.sort_by(|a, b| key(a, dim).partial_cmp(&key(b, dim)).expect("finite"));
    if dim + 1 >= D {
        for chunk in entries.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    let tiles_total = n.div_ceil(cap);
    let slabs = (tiles_total as f64)
        .powf(1.0 / (D - dim) as f64)
        .ceil()
        .max(1.0) as usize;
    let per_slab = n.div_ceil(slabs);
    for slab in entries.chunks_mut(per_slab) {
        tile_entries(slab, cap, dim + 1, out);
    }
}
