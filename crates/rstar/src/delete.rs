//! R\*-tree deletion (the classic Guttman/Beckmann *CondenseTree*
//! treatment): locate the leaf, remove the entry, dissolve underfull
//! nodes on the way up and re-insert their orphaned entries, and shrink
//! the root when it degenerates to a single child.

use crate::insert::insert_entry_at_level;
use crate::RStar;
use ann_core::node::{read_node, write_node, Entry, NodeEntry};
use ann_geom::{Mbr, Point};
use ann_store::{PageId, Result, StoreError, Txn};
use std::sync::Arc;

/// Removes the object `(oid, point)`; see [`RStar::delete`].
///
/// Returns `false` (tree untouched) when no such object exists.
pub(crate) fn delete<const D: usize>(
    tree: &mut RStar<D>,
    oid: u64,
    point: &Point<D>,
) -> Result<bool> {
    if tree.num_points == 0 {
        return Ok(false);
    }
    // Like insertion, the whole removal — entry removal, CondenseTree
    // re-insertions, root shrinking and the meta update — runs inside one
    // [`Txn`] so it lands atomically or not at all.
    let pool = Arc::clone(&tree.pool);
    let vstore = tree.versions.clone();
    let txn = match vstore.as_ref() {
        // Versioned mode: see `insert` — reads translate through the
        // latest snapshot, the commit publishes a new version.
        Some(store) => Txn::begin_versioned(store)?,
        None => Txn::begin(&pool, tree.journal),
    };
    let saved = (tree.root, tree.height, tree.num_points, tree.bounds);
    let result = (|| -> Result<bool> {
        // Orphaned entries to re-insert, each with its target level.
        let mut orphans: Vec<(Entry<D>, u32)> = Vec::new();
        let root_level = tree.height - 1;
        let outcome = remove_rec(tree, &txn, tree.root, root_level, oid, point, &mut orphans)?;
        if outcome.is_none() {
            return Ok(false);
        }
        tree.num_points -= 1;

        // Re-insert orphans (entries of dissolved nodes keep their level).
        let mut reinsert_done = vec![true; tree.height as usize + 2]; // no forced reinsert here
        while let Some((entry, level)) = orphans.pop() {
            insert_entry_at_level(tree, &txn, entry, level, &mut reinsert_done, &mut orphans)?;
        }

        // Shrink a degenerate root: an internal root with one child makes
        // the child the new root.
        loop {
            let root = read_node::<D>(&txn, tree.root)?;
            if !root.is_leaf && root.entries.len() == 1 {
                let Entry::Node(only) = root.entries[0] else {
                    return Err(StoreError::corrupt("internal node holds an object"));
                };
                tree.root = only.page;
                tree.height -= 1;
            } else {
                break;
            }
        }

        // Rebuild the cached dataset bounds (deletion can shrink them).
        let root = read_node::<D>(&txn, tree.root)?;
        tree.bounds = root.mbr;
        tree.save_meta_to(&txn)?;
        Ok(true)
    })();
    match result.and_then(|removed| txn.commit().map(|()| removed)) {
        Ok(removed) => Ok(removed),
        Err(e) => {
            (tree.root, tree.height, tree.num_points, tree.bounds) = saved;
            Err(e)
        }
    }
}

/// Recursive removal. Returns `None` when the object was not found below
/// `page`; otherwise `Some((count, mbr, dissolved))` where `dissolved`
/// means the node fell under minimum fill, its surviving entries were
/// moved to the orphan list, and the parent must drop its child entry.
#[allow(clippy::type_complexity)]
fn remove_rec<const D: usize>(
    tree: &RStar<D>,
    txn: &Txn<'_>,
    page: PageId,
    level: u32,
    oid: u64,
    point: &Point<D>,
    orphans: &mut Vec<(Entry<D>, u32)>,
) -> Result<Option<(u64, Mbr<D>, bool)>> {
    let mut node = read_node::<D>(txn, page)?;
    let is_root = level == tree.height - 1;

    if node.is_leaf {
        let before = node.entries.len();
        node.entries.retain(|e| match e {
            Entry::Object(o) => !(o.oid == oid && o.point == *point),
            Entry::Node(_) => true,
        });
        if node.entries.len() == before {
            return Ok(None);
        }
        debug_assert_eq!(node.entries.len() + 1, before, "oids are unique");
        let min = tree.min_entries(true);
        if !is_root && node.entries.len() < min {
            // Dissolve: survivors re-insert at leaf level.
            for e in node.entries.drain(..) {
                orphans.push((e, 0));
            }
            // The page becomes garbage; the parent drops its entry.
            return Ok(Some((0, Mbr::empty(), true)));
        }
        node.recompute_mbr();
        let count = node.entries.len() as u64;
        let mbr = node.mbr;
        write_node(txn, page, &node)?;
        return Ok(Some((count, mbr, false)));
    }

    // Internal: descend into every child whose MBR contains the point
    // (R-tree MBRs overlap, so several candidates are possible).
    for at in 0..node.entries.len() {
        let Entry::Node(child) = node.entries[at] else {
            return Err(StoreError::corrupt("internal node holds an object"));
        };
        if !child.mbr.contains_point(point) {
            continue;
        }
        let Some((count, mbr, dissolved)) =
            remove_rec(tree, txn, child.page, level - 1, oid, point, orphans)?
        else {
            continue;
        };
        if dissolved {
            node.entries.remove(at);
        } else {
            node.entries[at] = Entry::Node(NodeEntry {
                page: child.page,
                count,
                mbr,
            });
        }
        let min = tree.min_entries(false);
        if !is_root && node.entries.len() < min {
            // Dissolve this internal node too: its child entries were
            // held at this node's level, so they re-insert with the same
            // target level (the target names the level of the *holding*
            // node, matching the insertion path's convention).
            for e in node.entries.drain(..) {
                orphans.push((e, level));
            }
            return Ok(Some((0, Mbr::empty(), true)));
        }
        node.recompute_mbr();
        let count = node.count();
        let mbr = node.mbr;
        write_node(txn, page, &node)?;
        return Ok(Some((count, mbr, false)));
    }
    Ok(None)
}
