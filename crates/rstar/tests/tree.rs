//! Structural tests for the R*-tree: STR bulk builds, incremental R*
//! insertion with forced reinsertion, fanout invariants, persistence.

use ann_core::index::{collect_objects, validate, SpatialIndex};
use ann_core::node::Entry;
use ann_geom::Point;
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), frames))
}

fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<(u64, Point<D>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut c = [0.0; D];
            for v in c.iter_mut() {
                *v = rng.gen_range(-1000.0..1000.0);
            }
            (i as u64, Point::new(c))
        })
        .collect()
}

/// Small fanout to force deep trees in tests.
fn small_cfg() -> RStarConfig {
    RStarConfig {
        max_leaf_entries: 16,
        max_internal_entries: 8,
        ..Default::default()
    }
}

#[test]
fn bulk_build_validates_and_contains_all_points() {
    let pts = random_points::<2>(5000, 41);
    let tree = RStar::bulk_build(pool(64), &pts, &RStarConfig::default()).unwrap();
    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 5000);
    assert!(tree.height() >= 2);

    let got: HashSet<u64> = collect_objects(&tree)
        .unwrap()
        .iter()
        .map(|(o, _)| *o)
        .collect();
    assert_eq!(got.len(), 5000);
}

#[test]
fn incremental_insert_validates() {
    let pts = random_points::<2>(3000, 43);
    let mut tree = RStar::create(pool(64), &small_cfg()).unwrap();
    for &(oid, p) in &pts {
        tree.insert(oid, p).unwrap();
    }
    assert_eq!(tree.num_points(), 3000);
    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 3000);
    assert!(tree.height() >= 3, "small fanout must give a deep tree");
}

#[test]
fn fanout_bounds_hold_after_incremental_build() {
    let pts = random_points::<2>(4000, 47);
    let mut tree = RStar::create(pool(64), &small_cfg()).unwrap();
    for &(oid, p) in &pts {
        tree.insert(oid, p).unwrap();
    }
    let (max_leaf, max_internal) = tree.capacities();
    let mut stack = vec![(tree.root_page(), true)];
    while let Some((page, is_root)) = stack.pop() {
        let node = tree.read_node(page).unwrap();
        let max = if node.is_leaf { max_leaf } else { max_internal };
        assert!(node.entries.len() <= max, "node exceeds max fanout");
        if !is_root {
            let min = tree.min_entries(node.is_leaf);
            assert!(
                node.entries.len() >= min,
                "{} node underfull: {} < {}",
                if node.is_leaf { "leaf" } else { "internal" },
                node.entries.len(),
                min
            );
        }
        for e in &node.entries {
            if let Entry::Node(n) = e {
                stack.push((n.page, false));
            }
        }
    }
}

#[test]
fn reinsert_disabled_still_validates() {
    let pts = random_points::<2>(2000, 53);
    let cfg = RStarConfig {
        reinsert_percent: 0,
        ..small_cfg()
    };
    let mut tree = RStar::create(pool(64), &cfg).unwrap();
    for &(oid, p) in &pts {
        tree.insert(oid, p).unwrap();
    }
    assert_eq!(validate(&tree).unwrap().objects, 2000);
}

#[test]
fn mixed_bulk_then_incremental() {
    let pts = random_points::<2>(2000, 59);
    let (bulk_half, inc_half) = pts.split_at(1000);
    let mut tree = RStar::bulk_build(pool(64), bulk_half, &small_cfg()).unwrap();
    for &(oid, p) in inc_half {
        tree.insert(oid, p).unwrap();
    }
    assert_eq!(validate(&tree).unwrap().objects, 2000);
    let got: HashSet<u64> = collect_objects(&tree)
        .unwrap()
        .iter()
        .map(|(o, _)| *o)
        .collect();
    assert_eq!(got.len(), 2000);
}

#[test]
fn str_build_packs_efficiently() {
    // STR should use close to the minimum number of leaves.
    let pts = random_points::<2>(10_000, 61);
    let cfg = RStarConfig {
        max_leaf_entries: 100,
        max_internal_entries: 100,
        ..Default::default()
    };
    let tree = RStar::bulk_build(pool(64), &pts, &cfg).unwrap();
    let shape = validate(&tree).unwrap();
    // 10k points at 90-point fill → ~112 leaves; allow generous slack.
    assert!(shape.leaves <= 140, "too many leaves: {}", shape.leaves);
}

#[test]
fn open_round_trips_through_meta_page() {
    let pts = random_points::<4>(1500, 67);
    let pool = pool(64);
    let tree = RStar::bulk_build(pool.clone(), &pts, &RStarConfig::default()).unwrap();
    let meta = tree.meta_page();
    let (height, bounds) = (tree.height(), tree.bounds());
    drop(tree);
    let reopened: RStar<4> = RStar::open(pool, meta).unwrap();
    assert_eq!(reopened.height(), height);
    assert_eq!(reopened.bounds(), bounds);
    assert_eq!(validate(&reopened).unwrap().objects, 1500);
}

#[test]
fn wrong_dimension_open_fails() {
    let pts = random_points::<2>(100, 71);
    let pool = pool(64);
    let tree = RStar::bulk_build(pool.clone(), &pts, &RStarConfig::default()).unwrap();
    let meta = tree.meta_page();
    assert!(RStar::<3>::open(pool, meta).is_err());
}

#[test]
fn ten_dimensional_build_and_insert() {
    let pts = random_points::<10>(1200, 73);
    let mut tree = RStar::bulk_build(pool(128), &pts[..1000], &RStarConfig::default()).unwrap();
    for &(oid, p) in &pts[1000..] {
        tree.insert(oid, p).unwrap();
    }
    assert_eq!(validate(&tree).unwrap().objects, 1200);
}

#[test]
fn empty_and_tiny_trees() {
    let empty = RStar::<2>::bulk_build(pool(16), &[], &RStarConfig::default()).unwrap();
    assert_eq!(empty.num_points(), 0);
    assert_eq!(validate(&empty).unwrap().objects, 0);

    let mut one = RStar::<2>::create(pool(16), &RStarConfig::default()).unwrap();
    one.insert(9, Point::new([1.0, 2.0])).unwrap();
    assert_eq!(
        collect_objects(&one).unwrap(),
        vec![(9, Point::new([1.0, 2.0]))]
    );
}

#[test]
fn duplicate_points_are_allowed() {
    let mut tree = RStar::<2>::create(pool(32), &small_cfg()).unwrap();
    for i in 0..200 {
        tree.insert(i, Point::new([1.0, 1.0])).unwrap();
    }
    assert_eq!(validate(&tree).unwrap().objects, 200);
}

#[test]
fn rejects_non_finite_points() {
    let mut tree = RStar::<2>::create(pool(16), &RStarConfig::default()).unwrap();
    assert!(tree.insert(0, Point::new([f64::NAN, 0.0])).is_err());
    assert_eq!(tree.num_points(), 0);
}

#[test]
fn node_cache_invalidated_by_insert_and_delete() {
    let pts = random_points::<2>(1500, 31);
    let mut tree = RStar::bulk_build(pool(64), &pts, &small_cfg()).unwrap();
    let cache = tree.node_cache().expect("R*-tree keeps a node cache");

    cache.reset_stats();
    tree.read_node_cached(tree.root_page()).unwrap();
    tree.read_node_cached(tree.root_page()).unwrap();
    let s = cache.stats();
    assert_eq!(s.misses, 1);
    assert_eq!(s.hits, 1);
    let epoch_before = cache.epoch();

    // Mutations bump the epoch, so cached traversals see the new shape.
    let extra = Point::new([3.5, -8.75]);
    tree.insert(77_777, extra).unwrap();
    let cache = tree.node_cache().unwrap();
    assert_ne!(cache.epoch(), epoch_before, "insert bumps the epoch");

    let mut stack = vec![tree.root_page()];
    let mut found = false;
    while let Some(page) = stack.pop() {
        let node = tree.read_node_cached(page).unwrap();
        for e in node.entries.iter() {
            match e {
                Entry::Object(o) if o.oid == 77_777 => found = true,
                Entry::Node(n) => stack.push(n.page),
                _ => {}
            }
        }
    }
    assert!(found, "cached traversal observes the inserted point");

    let epoch_before = cache.epoch();
    assert!(tree.delete(77_777, &extra).unwrap());
    let cache = tree.node_cache().unwrap();
    assert_ne!(cache.epoch(), epoch_before, "delete bumps the epoch");
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node_cached(page).unwrap();
        for e in node.entries.iter() {
            match e {
                Entry::Object(o) => assert_ne!(o.oid, 77_777, "stale cache"),
                Entry::Node(n) => stack.push(n.page),
            }
        }
    }
    let epoch_before = cache.epoch();
    assert!(!tree.delete(424_242, &extra).unwrap());
    assert_eq!(
        tree.node_cache().unwrap().epoch(),
        epoch_before,
        "no-op delete keeps the cache"
    );
}

#[test]
fn decoded_soa_columns_round_trip_every_node() {
    // Every node of a multi-level tree: the decode-time SoA mirror must
    // gather back to exactly the entry list — bit-for-bit coordinates —
    // because the batched kernels read the columns while decisions and
    // results are still expressed against the entries.
    let pts = random_points::<3>(3000, 44);
    let tree = RStar::bulk_build(pool(64), &pts, &RStarConfig::default()).unwrap();
    let mut stack = vec![tree.root_page()];
    let mut leaves = 0;
    let mut internals = 0;
    while let Some(page) = stack.pop() {
        let node = tree.read_node_cached(page).unwrap();
        let mbrs = node.soa_mbrs();
        assert_eq!(mbrs.len, node.entries.len());
        for (i, e) in node.entries.iter().enumerate() {
            let got = mbrs.mbr::<3>(i);
            let want = e.mbr();
            assert_eq!(got.lo.map(f64::to_bits), want.lo.map(f64::to_bits));
            assert_eq!(got.hi.map(f64::to_bits), want.hi.map(f64::to_bits));
        }
        if node.is_leaf {
            leaves += 1;
            let points = node.leaf_points().expect("leaf has point columns");
            for (i, e) in node.entries.iter().enumerate() {
                let Entry::Object(o) = e else {
                    panic!("leaf holds a child")
                };
                assert_eq!(
                    points.point::<3>(i).coords().map(f64::to_bits),
                    o.point.coords().map(f64::to_bits)
                );
            }
        } else {
            internals += 1;
            assert!(node.leaf_points().is_none());
            for e in node.entries.iter() {
                let Entry::Node(n) = e else {
                    panic!("internal holds an object")
                };
                stack.push(n.page);
            }
        }
    }
    assert!(leaves > 1 && internals >= 1, "tree too small to be probative");
}
