//! Out-of-core (streamed) bulk build: structural validity, census, and
//! query equivalence against the in-memory STR build.

use ann_core::index::{collect_objects, validate, SpatialIndex};
use ann_core::knn::knn;
use ann_geom::{NxnDist, Point};
use ann_rstar::{RStar, RStarConfig};
use ann_store::{BufferPool, MemDisk};
use std::sync::Arc;

fn pool(pages: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(MemDisk::new(), pages))
}

/// Deterministic pseudo-random points (no rand dependency needed).
fn points(n: usize, seed: u64) -> Vec<(u64, Point<2>)> {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 40) as f64 / (1u64 << 24) as f64
    };
    (0..n as u64).map(|i| (i, Point::new([next(), next()]))).collect()
}

#[test]
fn streamed_build_validates_and_holds_every_point() {
    let pts = points(5000, 0xA11CE);
    let tree = RStar::bulk_build_stream(
        pool(64),
        pool(32),
        pts.iter().copied(),
        // A run budget far below the input size forces multiple spilled
        // runs and a real k-way merge.
        700,
        &RStarConfig::default(),
    )
    .unwrap();

    let shape = validate(&tree).unwrap();
    assert_eq!(shape.objects, 5000);
    assert!(shape.height >= 2, "5000 points cannot fit one leaf");

    let mut census: Vec<_> = collect_objects(&tree).unwrap();
    census.sort_by_key(|(oid, _)| *oid);
    assert_eq!(census, pts, "every point survives the external pipeline");
}

#[test]
fn streamed_tree_answers_queries_like_the_str_tree() {
    let pts = points(2000, 7);
    let streamed = RStar::bulk_build_stream(
        pool(64),
        pool(32),
        pts.iter().copied(),
        333,
        &RStarConfig::default(),
    )
    .unwrap();
    let str_tree = RStar::bulk_build(pool(64), &pts, &RStarConfig::default()).unwrap();

    // Different packing, same contents: every kNN answer must agree.
    for (q, k) in [([0.1, 0.9], 1), ([0.5, 0.5], 5), ([0.99, 0.01], 17)] {
        let a = knn::<2, NxnDist, _>(&streamed, &Point::new(q), k).unwrap();
        let b = knn::<2, NxnDist, _>(&str_tree, &Point::new(q), k).unwrap();
        assert_eq!(a, b, "query {q:?} k={k}");
    }
}

#[test]
fn streamed_build_reopens_from_meta() {
    let pts = points(800, 99);
    let p = pool(64);
    let tree = RStar::bulk_build_stream(
        Arc::clone(&p),
        pool(16),
        pts.iter().copied(),
        100,
        &RStarConfig::default(),
    )
    .unwrap();
    let meta = tree.meta_page();
    let bounds = tree.bounds();
    drop(tree);
    let reopened = RStar::<2>::open(p, meta).unwrap();
    assert_eq!(reopened.num_points(), 800);
    assert_eq!(reopened.bounds(), bounds);
}

#[test]
fn streamed_build_handles_empty_and_degenerate_inputs() {
    // Empty stream: a single empty leaf, validating cleanly.
    let empty = RStar::<2>::bulk_build_stream(
        pool(16),
        pool(16),
        std::iter::empty(),
        10,
        &RStarConfig::default(),
    )
    .unwrap();
    assert_eq!(validate(&empty).unwrap().objects, 0);

    // All-duplicate points: every Hilbert key collides; the oid tie-break
    // still yields a total order and a valid tree.
    let dupes: Vec<(u64, Point<2>)> =
        (0..500).map(|i| (i, Point::new([0.25, 0.75]))).collect();
    let tree = RStar::bulk_build_stream(
        pool(64),
        pool(16),
        dupes.iter().copied(),
        64,
        &RStarConfig::default(),
    )
    .unwrap();
    assert_eq!(validate(&tree).unwrap().objects, 500);

    // Non-finite input is rejected up front.
    let bad = RStar::<2>::bulk_build_stream(
        pool(16),
        pool(16),
        vec![(0u64, Point::new([f64::NAN, 0.0]))],
        10,
        &RStarConfig::default(),
    );
    assert!(bad.is_err());
}
